package mac

import (
	"errors"
	"fmt"

	"dense802154/internal/frame"
)

// GTS management (§7.5.7): the PAN coordinator may dedicate up to seven
// blocks of superframe slots at the tail of the active period. The paper's
// §2 observes this cannot serve dense networks — hundreds of nodes compete
// for at most seven descriptors — which the EXT2 experiment quantifies.

// GTS allocation errors.
var (
	ErrGTSFull      = errors.New("mac: all 7 GTS descriptors in use")
	ErrGTSNoRoom    = errors.New("mac: allocation would shrink CAP below aMinCAPLength")
	ErrGTSDuplicate = errors.New("mac: device already owns a GTS")
	ErrGTSNotFound  = errors.New("mac: no GTS for device")
)

// GTSDB is the coordinator's guaranteed-time-slot allocation table for one
// superframe configuration.
type GTSDB struct {
	sf     Superframe
	allocs []frame.GTSDescriptor
	rxOnly map[uint16]bool
}

// NewGTSDB creates an empty allocation table over the given superframe.
func NewGTSDB(sf Superframe) *GTSDB {
	return &GTSDB{sf: sf, rxOnly: make(map[uint16]bool)}
}

// usedSlots reports how many superframe slots the CFP currently occupies.
func (g *GTSDB) usedSlots() int {
	n := 0
	for _, d := range g.allocs {
		n += int(d.Length)
	}
	return n
}

// FinalCAPSlot reports the last CAP slot given current allocations.
func (g *GTSDB) FinalCAPSlot() uint8 {
	return uint8(NumSuperframeSlots - 1 - g.usedSlots())
}

// Allocate grants `slots` superframe slots to the device, carving them from
// the end of the active period.
func (g *GTSDB) Allocate(addr uint16, slots uint8, rxOnly bool) (frame.GTSDescriptor, error) {
	if slots == 0 || slots > 15 {
		return frame.GTSDescriptor{}, fmt.Errorf("mac: invalid GTS length %d", slots)
	}
	if len(g.allocs) >= frame.MaxGTSDescriptors {
		return frame.GTSDescriptor{}, ErrGTSFull
	}
	for _, d := range g.allocs {
		if d.ShortAddr == addr {
			return frame.GTSDescriptor{}, ErrGTSDuplicate
		}
	}
	newUsed := g.usedSlots() + int(slots)
	if newUsed >= NumSuperframeSlots {
		return frame.GTSDescriptor{}, ErrGTSNoRoom
	}
	capSlots := NumSuperframeSlots - newUsed
	capSymbols := capSlots * BaseSlotSymbols << uint(g.sf.SO)
	if capSymbols < MinCAPSymbols {
		return frame.GTSDescriptor{}, ErrGTSNoRoom
	}
	d := frame.GTSDescriptor{
		ShortAddr: addr,
		StartSlot: uint8(NumSuperframeSlots - newUsed),
		Length:    slots,
	}
	g.allocs = append(g.allocs, d)
	g.rxOnly[addr] = rxOnly
	return d, nil
}

// Deallocate releases a device's GTS and repacks later allocations toward
// the end of the superframe (the standard's coordinator does the same on
// its next beacons).
func (g *GTSDB) Deallocate(addr uint16) error {
	idx := -1
	for i, d := range g.allocs {
		if d.ShortAddr == addr {
			idx = i
			break
		}
	}
	if idx < 0 {
		return ErrGTSNotFound
	}
	g.allocs = append(g.allocs[:idx], g.allocs[idx+1:]...)
	delete(g.rxOnly, addr)
	// Repack start slots from the superframe tail.
	used := 0
	for i := range g.allocs {
		used += int(g.allocs[i].Length)
		g.allocs[i].StartSlot = uint8(NumSuperframeSlots - used)
	}
	return nil
}

// Descriptors returns the current allocation list in beacon order.
func (g *GTSDB) Descriptors() []frame.GTSDescriptor {
	return append([]frame.GTSDescriptor(nil), g.allocs...)
}

// Directions encodes the beacon's GTS-directions bitmap (bit i set for
// RX-only descriptors).
func (g *GTSDB) Directions() uint8 {
	var dir uint8
	for i, d := range g.allocs {
		if g.rxOnly[d.ShortAddr] {
			dir |= 1 << uint(i)
		}
	}
	return dir
}

// Lookup reports the descriptor of a device, if any.
func (g *GTSDB) Lookup(addr uint16) (frame.GTSDescriptor, bool) {
	for _, d := range g.allocs {
		if d.ShortAddr == addr {
			return d, true
		}
	}
	return frame.GTSDescriptor{}, false
}

// MaxNodesServed reports how many devices a single superframe can serve
// with dedicated slots of the given length — the quantitative form of the
// paper's "the number of dedicated slots would not be sufficient to
// accommodate several hundreds of nodes".
func MaxNodesServed(sf Superframe, slotsPerNode uint8) int {
	db := NewGTSDB(sf)
	n := 0
	for {
		if _, err := db.Allocate(uint16(n+1), slotsPerNode, false); err != nil {
			return n
		}
		n++
	}
}
