// Package mac implements the IEEE 802.15.4-2003 medium access control
// mechanics the paper models: the beacon-enabled superframe structure, the
// slotted CSMA/CA algorithm (including the Battery Life Extension variant),
// acknowledgment and inter-frame-spacing timing, and guaranteed time slot
// bookkeeping.
//
// The CSMA/CA transaction is a pure, steppable state machine so the same
// code drives both the fast Monte-Carlo contention characterizer
// (internal/contention) and the full discrete-event simulator
// (internal/netsim).
package mac

import (
	"fmt"
	"time"

	"dense802154/internal/phy"
)

// MAC timing constants (802.15.4-2003 §7.4.2, 2450 MHz PHY).
const (
	// BaseSlotSymbols is aBaseSlotDuration: symbols per superframe slot
	// at superframe order zero.
	BaseSlotSymbols = 60
	// NumSuperframeSlots is aNumSuperframeSlots.
	NumSuperframeSlots = 16
	// BaseSuperframeSymbols is aBaseSuperframeDuration = 960 symbols.
	BaseSuperframeSymbols = BaseSlotSymbols * NumSuperframeSlots

	// BaseSuperframeDuration is the minimum superframe/beacon interval,
	// T_ib_min = 15.36 ms (eq. 12).
	BaseSuperframeDuration = BaseSuperframeSymbols * phy.SymbolPeriod

	// MaxBeaconOrder is the largest BO/SO that still produces beacons.
	MaxBeaconOrder = 14

	// AckWaitMin is t_ack−: the gap between the data frame and the
	// acknowledgment (aTurnaroundTime, 192 µs).
	AckWaitMin = 12 * phy.SymbolPeriod
	// AckWaitMax is t_ack+: macAckWaitDuration, the longest time the
	// transmitter waits for an acknowledgment (54 symbols, 864 µs).
	AckWaitMax = 54 * phy.SymbolPeriod

	// SIFS is the short inter-frame spacing (12 symbols).
	SIFS = 12 * phy.SymbolPeriod
	// LIFS is the long inter-frame spacing (40 symbols).
	LIFS = 40 * phy.SymbolPeriod
	// MaxSIFSFrameSize is aMaxSIFSFrameSize: MPDUs longer than this are
	// followed by a LIFS.
	MaxSIFSFrameSize = 18

	// MinCAPSymbols is aMinCAPLength: the contention access period may
	// not shrink below 440 symbols.
	MinCAPSymbols = 440
)

// BeaconInterval reports T_ib = T_ib_min · 2^BO (eq. 12).
func BeaconInterval(bo uint8) time.Duration {
	return BaseSuperframeDuration << uint(bo)
}

// SuperframeDuration reports the active portion, T_ib_min · 2^SO.
func SuperframeDuration(so uint8) time.Duration {
	return BaseSuperframeDuration << uint(so)
}

// IFSFor reports the inter-frame space that must follow a frame whose MPDU
// is mpduBytes long.
func IFSFor(mpduBytes int) time.Duration {
	if mpduBytes > MaxSIFSFrameSize {
		return LIFS
	}
	return SIFS
}

// CSMAParams parameterizes the slotted CSMA/CA algorithm.
type CSMAParams struct {
	// MinBE and MaxBE bound the backoff exponent.
	MinBE, MaxBE int
	// MaxBackoffs is the number of busy channel assessments tolerated
	// before the transaction aborts with a channel access failure: the
	// attempt counter NB may reach MaxBackoffs; one more busy CCA fails.
	MaxBackoffs int
	// CW is the contention window: the number of consecutive clear CCAs
	// required before transmission (2 in slotted mode).
	CW int
	// BatteryLifeExt caps the backoff exponent at 2 (the BLE mode the
	// paper rejects for dense networks because of its collision rate).
	BatteryLifeExt bool
}

// StandardParams returns the 802.15.4-2003 defaults: macMinBE = 3,
// aMaxBE = 5, macMaxCSMABackoffs = 4, CW = 2.
func StandardParams() CSMAParams {
	return CSMAParams{MinBE: 3, MaxBE: 5, MaxBackoffs: 4, CW: 2}
}

// PaperParams returns the algorithm as the paper describes it in §2: the
// first sense is delayed by rand[0, 2^BE-1], BE starts at 3 and "if the
// latter has been incremented twice and the channel is not sensed to be
// free, a transmission failure is notified" — i.e. three CCA attempts with
// BE ∈ {3, 4, 5}.
func PaperParams() CSMAParams {
	return CSMAParams{MinBE: 3, MaxBE: 5, MaxBackoffs: 2, CW: 2}
}

// Validate reports whether the parameters are self-consistent.
func (p CSMAParams) Validate() error {
	if p.MinBE < 0 || p.MaxBE < p.MinBE {
		return fmt.Errorf("mac: invalid BE range [%d,%d]", p.MinBE, p.MaxBE)
	}
	if p.MaxBackoffs < 0 {
		return fmt.Errorf("mac: negative MaxBackoffs %d", p.MaxBackoffs)
	}
	if p.CW < 1 {
		return fmt.Errorf("mac: contention window %d < 1", p.CW)
	}
	return nil
}

// effectiveBE applies the Battery Life Extension cap.
func (p CSMAParams) effectiveBE(be int) int {
	if p.BatteryLifeExt && be > 2 {
		return 2
	}
	if be > p.MaxBE {
		return p.MaxBE
	}
	return be
}
