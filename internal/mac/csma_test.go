package mac

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestParamsValidate(t *testing.T) {
	if err := StandardParams().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := PaperParams().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []CSMAParams{
		{MinBE: -1, MaxBE: 5, MaxBackoffs: 4, CW: 2},
		{MinBE: 5, MaxBE: 3, MaxBackoffs: 4, CW: 2},
		{MinBE: 3, MaxBE: 5, MaxBackoffs: -1, CW: 2},
		{MinBE: 3, MaxBE: 5, MaxBackoffs: 4, CW: 0},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid params accepted", i)
		}
	}
}

func TestPaperParamsThreeAttempts(t *testing.T) {
	// BE starts at 3; after two increments (BE=5) one more busy CCA must
	// abort: exactly 3 busy assessments are tolerated before failure...
	// i.e. the 3rd busy CCA (NB=3 > MaxBackoffs=2) fails the transaction.
	rng := rand.New(rand.NewSource(1))
	tr := NewTransaction(PaperParams(), rng)
	busyCount := 0
	for !tr.Done() {
		if tr.CCADue() {
			busyCount++
			tr.CCAResult(true)
		} else {
			tr.AdvanceSlot()
		}
	}
	if !tr.Failed() {
		t.Fatal("always-busy channel must end in access failure")
	}
	if busyCount != 3 {
		t.Fatalf("tolerated %d busy CCAs before failing, want 3", busyCount)
	}
}

func TestCleanChannelGrantsAfterTwoCCAs(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 100; trial++ {
		tr := NewTransaction(PaperParams(), rng)
		ccas := 0
		for !tr.Done() {
			if tr.CCADue() {
				ccas++
				out := tr.CCAResult(false)
				if ccas == 1 && out != OutcomeNextCCA {
					t.Fatalf("first clear CCA -> %v, want next-cca", out)
				}
				if ccas == 2 && out != OutcomeTransmit {
					t.Fatalf("second clear CCA -> %v, want transmit", out)
				}
			} else {
				tr.AdvanceSlot()
			}
		}
		if !tr.Granted() || tr.Failed() {
			t.Fatal("clean channel must grant")
		}
		if ccas != 2 {
			t.Fatalf("ccas = %d, want 2 (CW)", ccas)
		}
		if tr.CCAs() != 2 || tr.BusyCCAs() != 0 {
			t.Fatal("stats")
		}
	}
}

func TestInitialBackoffWindow(t *testing.T) {
	// The first sense is delayed by rand[0, 2^3-1] slots.
	rng := rand.New(rand.NewSource(3))
	seen := make(map[int]bool)
	for trial := 0; trial < 2000; trial++ {
		tr := NewTransaction(PaperParams(), rng)
		slots := 0
		for !tr.CCADue() {
			tr.AdvanceSlot()
			slots++
		}
		if slots < 0 || slots > 7 {
			t.Fatalf("initial backoff %d outside [0,7]", slots)
		}
		seen[slots] = true
	}
	for d := 0; d <= 7; d++ {
		if !seen[d] {
			t.Errorf("delay %d never drawn", d)
		}
	}
}

func TestBackoffExponentGrowth(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	tr := NewTransaction(PaperParams(), rng)
	if tr.BackoffExponent() != 3 {
		t.Fatalf("initial BE = %d", tr.BackoffExponent())
	}
	drain := func() {
		for !tr.CCADue() && !tr.Done() {
			tr.AdvanceSlot()
		}
	}
	drain()
	tr.CCAResult(true)
	if tr.BackoffExponent() != 4 {
		t.Fatalf("BE after 1 busy = %d, want 4", tr.BackoffExponent())
	}
	drain()
	tr.CCAResult(true)
	if tr.BackoffExponent() != 5 {
		t.Fatalf("BE after 2 busy = %d, want 5", tr.BackoffExponent())
	}
	if tr.Backoffs() != 2 {
		t.Fatalf("NB = %d", tr.Backoffs())
	}
}

func TestBEDoesNotExceedMax(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	p := StandardParams() // MaxBackoffs=4 allows BE to hit the cap
	tr := NewTransaction(p, rng)
	for !tr.Done() {
		if tr.CCADue() {
			tr.CCAResult(true)
			if tr.BackoffExponent() > p.MaxBE {
				t.Fatalf("BE %d exceeded max %d", tr.BackoffExponent(), p.MaxBE)
			}
		} else {
			tr.AdvanceSlot()
		}
	}
}

func TestBusyResetsContentionWindow(t *testing.T) {
	// clear, busy, then the transaction must again demand CW=2 clears.
	rng := rand.New(rand.NewSource(6))
	tr := NewTransaction(PaperParams(), rng)
	step := func(busy bool) Outcome {
		for !tr.CCADue() {
			tr.AdvanceSlot()
		}
		return tr.CCAResult(busy)
	}
	if out := step(false); out != OutcomeNextCCA {
		t.Fatalf("first clear -> %v", out)
	}
	if out := step(true); out != OutcomeBackoff {
		t.Fatalf("busy -> %v", out)
	}
	if out := step(false); out != OutcomeNextCCA {
		t.Fatalf("clear after busy -> %v, want next-cca (CW reset)", out)
	}
	if out := step(false); out != OutcomeTransmit {
		t.Fatalf("second clear -> %v", out)
	}
}

func TestBatteryLifeExtensionCapsBE(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	p := PaperParams()
	p.BatteryLifeExt = true
	tr := NewTransaction(p, rng)
	if tr.BackoffExponent() != 2 {
		t.Fatalf("BLE initial BE = %d, want 2", tr.BackoffExponent())
	}
	for !tr.Done() {
		if tr.CCADue() {
			tr.CCAResult(true)
			if tr.BackoffExponent() > 2 {
				t.Fatalf("BLE BE grew to %d", tr.BackoffExponent())
			}
		} else {
			tr.AdvanceSlot()
		}
	}
}

func TestMisusePanics(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	// AdvanceSlot while CCA due.
	tr := NewTransaction(PaperParams(), rng)
	for !tr.CCADue() {
		tr.AdvanceSlot()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("AdvanceSlot with due CCA must panic")
			}
		}()
		tr.AdvanceSlot()
	}()
	// CCAResult without due CCA.
	tr2 := NewTransaction(CSMAParams{MinBE: 3, MaxBE: 5, MaxBackoffs: 2, CW: 2}, rand.New(rand.NewSource(12)))
	if !tr2.CCADue() {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("CCAResult without due CCA must panic")
				}
			}()
			tr2.CCAResult(false)
		}()
	}
	// CCAResult after done.
	tr3 := NewTransaction(PaperParams(), rng)
	for !tr3.Done() {
		if tr3.CCADue() {
			tr3.CCAResult(false)
		} else {
			tr3.AdvanceSlot()
		}
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("CCAResult on finished transaction must panic")
			}
		}()
		tr3.CCAResult(false)
	}()
	// AdvanceSlot after done is a harmless no-op.
	tr3.AdvanceSlot()
	// Invalid params.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("NewTransaction with invalid params must panic")
			}
		}()
		NewTransaction(CSMAParams{MinBE: 3, MaxBE: 1, MaxBackoffs: 1, CW: 2}, rng)
	}()
}

// Property: under any channel pattern, a transaction terminates within a
// bounded number of slots, and Granted XOR Failed holds at the end.
func TestPropertyTransactionTerminates(t *testing.T) {
	f := func(seed int64, pattern uint64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := NewTransaction(StandardParams(), rng)
		steps := 0
		bit := 0
		for !tr.Done() {
			steps++
			if steps > 10_000 {
				return false
			}
			if tr.CCADue() {
				busy := pattern&(1<<uint(bit%64)) != 0
				bit++
				tr.CCAResult(busy)
			} else {
				tr.AdvanceSlot()
			}
		}
		return tr.Granted() != tr.Failed()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: total CCAs never exceed (MaxBackoffs+1)·CW and busy CCAs never
// exceed MaxBackoffs+1.
func TestPropertyCCABounds(t *testing.T) {
	f := func(seed int64, pattern uint64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := PaperParams()
		tr := NewTransaction(p, rng)
		bit := 0
		for !tr.Done() {
			if tr.CCADue() {
				tr.CCAResult(pattern&(1<<uint(bit%64)) != 0)
				bit++
			} else {
				tr.AdvanceSlot()
			}
		}
		maxCCA := (p.MaxBackoffs + 1) * p.CW
		return tr.CCAs() <= maxCCA && tr.BusyCCAs() <= p.MaxBackoffs+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestOutcomeStrings(t *testing.T) {
	for _, o := range []Outcome{OutcomeNextCCA, OutcomeTransmit, OutcomeBackoff, OutcomeFailure, Outcome(42)} {
		if o.String() == "" {
			t.Fatalf("empty outcome string for %d", int(o))
		}
	}
}
