package mac

import (
	"testing"
	"time"

	"dense802154/internal/frame"
	"dense802154/internal/phy"
)

func TestAddressPoolAssignsDistinct(t *testing.T) {
	p := NewAddressPool(1)
	seen := map[uint16]bool{}
	for i := 0; i < 1600; i++ {
		a, err := p.Assign()
		if err != nil {
			t.Fatalf("assign %d: %v", i, err)
		}
		if seen[a] {
			t.Fatalf("duplicate address %#04x", a)
		}
		if a == AddrBroadcast || a == AddrNoShortAddr || a == AddrCoordinator {
			t.Fatalf("reserved address %#04x assigned", a)
		}
		seen[a] = true
	}
	if p.InUse() != 1600 {
		t.Fatalf("in use = %d", p.InUse())
	}
}

func TestAddressPoolRecycles(t *testing.T) {
	p := NewAddressPool(1)
	a, _ := p.Assign()
	b, _ := p.Assign()
	p.Release(a)
	c, _ := p.Assign()
	if c != a {
		t.Fatalf("released address not recycled: got %#04x want %#04x", c, a)
	}
	if b == c {
		t.Fatal("collision")
	}
	// Releasing an unassigned address is a no-op.
	p.Release(0x9999)
	if p.InUse() != 2 {
		t.Fatalf("in use = %d", p.InUse())
	}
}

func TestAddressPoolExhaustion(t *testing.T) {
	p := NewAddressPool(0xFFFD)
	if _, err := p.Assign(); err != nil {
		t.Fatal(err)
	}
	// Next would be 0xFFFE (reserved): pool is done.
	if _, err := p.Assign(); err != ErrPoolExhausted {
		t.Fatalf("err = %v, want ErrPoolExhausted", err)
	}
}

func TestAddressPoolZeroStart(t *testing.T) {
	p := NewAddressPool(0)
	a, err := p.Assign()
	if err != nil || a == 0 {
		t.Fatalf("assign from zero start: %v %v", a, err)
	}
}

func TestAssociationStatusStrings(t *testing.T) {
	for _, s := range []AssociationStatus{AssocSuccess, AssocPANAtCapacity, AssocAccessDenied, 0x77} {
		if s.String() == "" {
			t.Fatalf("empty string for %d", s)
		}
	}
}

func TestAssociationExchangeSizes(t *testing.T) {
	ex := NewAssociationExchange()
	// Request: PHY 6 + MHR(short dst, ext src, intra-PAN: 3+4+8=15) +
	// 2 payload + 2 FCS = 25 bytes.
	if ex.RequestBytes != 25 {
		t.Fatalf("request = %d bytes, want 25", ex.RequestBytes)
	}
	// Poll: 15 + 1 + 2 + 6 = 24 bytes.
	if ex.PollBytes != 24 {
		t.Fatalf("poll = %d bytes, want 24", ex.PollBytes)
	}
	// Response: MHR(ext dst 10+... 3+10+2=15) + 4 + 2 + 6 = 27 bytes.
	if ex.ResponseBytes != 27 {
		t.Fatalf("response = %d bytes, want 27", ex.ResponseBytes)
	}
	wantTx := phy.TxDuration(25) + phy.TxDuration(24) + frame.AckDuration
	if ex.TxOnTime != wantTx {
		t.Fatalf("tx time = %v, want %v", ex.TxOnTime, wantTx)
	}
	wantRx := 2*frame.AckDuration + phy.TxDuration(27)
	if ex.RxOnTime != wantRx {
		t.Fatalf("rx time = %v, want %v", ex.RxOnTime, wantRx)
	}
}

func TestResponseWaitTime(t *testing.T) {
	// 32 base superframes halved = 245.76 ms at the 2450 MHz rate.
	if ResponseWaitTime != 245760*time.Microsecond {
		t.Fatalf("response wait = %v", ResponseWaitTime)
	}
}
