package mac

import (
	"errors"
	"time"

	"dense802154/internal/frame"
	"dense802154/internal/phy"
)

// Indirect (downlink) transmission, Fig. 1b of the paper: the coordinator
// does not push frames to sleeping nodes. It queues them, advertises the
// destination in the beacon's pending-address list, and the node extracts
// its frame with a data-request command after the beacon. This file
// implements the coordinator-side queue and the per-exchange timing/cost
// used by the downlink experiment.

// IndirectQueue errors.
var (
	ErrQueueFull     = errors.New("mac: indirect queue full")
	ErrNothingQueued = errors.New("mac: no frame pending for device")
)

// MaxPendingAddresses is the beacon's pending-address capacity per kind.
const MaxPendingAddresses = 7

// IndirectEntry is one queued downlink frame.
type IndirectEntry struct {
	Dst      uint16
	Payload  []byte
	QueuedAt time.Duration
}

// IndirectQueue is the coordinator's transaction-pending queue. The 2003
// standard holds entries for at most macTransactionPersistenceTime; the
// caller supplies the current time to Expire.
type IndirectQueue struct {
	// Persistence is how long entries survive
	// (macTransactionPersistenceTime; default 7.68 s at BO=6 scale).
	Persistence time.Duration
	entries     []IndirectEntry
}

// NewIndirectQueue builds a queue with the given persistence (0 = never
// expire).
func NewIndirectQueue(persistence time.Duration) *IndirectQueue {
	return &IndirectQueue{Persistence: persistence}
}

// Queue adds a downlink frame for a device. The queue is bounded by the
// beacon's advertising capacity: at most MaxPendingAddresses distinct
// destinations may be pending.
func (q *IndirectQueue) Queue(dst uint16, payload []byte, now time.Duration) error {
	distinct := map[uint16]bool{}
	for _, e := range q.entries {
		distinct[e.Dst] = true
	}
	if !distinct[dst] && len(distinct) >= MaxPendingAddresses {
		return ErrQueueFull
	}
	q.entries = append(q.entries, IndirectEntry{
		Dst:      dst,
		Payload:  append([]byte(nil), payload...),
		QueuedAt: now,
	})
	return nil
}

// Pending reports the distinct destinations with queued frames, in queue
// order — the beacon's pending-address list.
func (q *IndirectQueue) Pending() []uint16 {
	var out []uint16
	seen := map[uint16]bool{}
	for _, e := range q.entries {
		if !seen[e.Dst] {
			seen[e.Dst] = true
			out = append(out, e.Dst)
		}
	}
	return out
}

// HasPending reports whether a device has a queued frame.
func (q *IndirectQueue) HasPending(dst uint16) bool {
	for _, e := range q.entries {
		if e.Dst == dst {
			return true
		}
	}
	return false
}

// Extract pops the oldest frame queued for the device (the coordinator's
// response to its data request). more reports whether further frames
// remain queued for it (the frame-pending bit of the delivered frame).
func (q *IndirectQueue) Extract(dst uint16) (e IndirectEntry, more bool, err error) {
	idx := -1
	for i, cand := range q.entries {
		if cand.Dst == dst {
			idx = i
			break
		}
	}
	if idx < 0 {
		return IndirectEntry{}, false, ErrNothingQueued
	}
	e = q.entries[idx]
	q.entries = append(q.entries[:idx], q.entries[idx+1:]...)
	return e, q.HasPending(dst), nil
}

// Expire drops entries older than the persistence time and reports how
// many were dropped.
func (q *IndirectQueue) Expire(now time.Duration) int {
	if q.Persistence <= 0 {
		return 0
	}
	kept := q.entries[:0]
	dropped := 0
	for _, e := range q.entries {
		if now-e.QueuedAt > q.Persistence {
			dropped++
			continue
		}
		kept = append(kept, e)
	}
	q.entries = kept
	return dropped
}

// Len reports the number of queued frames.
func (q *IndirectQueue) Len() int { return len(q.entries) }

// DownlinkExchange is the node-side cost of one indirect delivery: the
// node hears its address in the beacon, sends a data request (a MAC
// command through CSMA), receives the coordinator's ack, stays in receive
// mode for the data frame, and acknowledges it.
type DownlinkExchange struct {
	// RequestBytes is the on-air data-request command size.
	RequestBytes int
	// DataBytes is the on-air downlink frame size.
	DataBytes int
	// RxOnTime is the node's total receiver-on time.
	RxOnTime time.Duration
	// TxOnTime is the node's total transmitter-on time.
	TxOnTime time.Duration
}

// NewDownlinkExchange sizes one indirect delivery of a payload. The data
// request is a MAC command (1-byte command id) with short addressing; per
// §7.5.6.3 the coordinator's data frame follows the request's ack.
func NewDownlinkExchange(payloadBytes int) DownlinkExchange {
	reqMPDU := MHRLengthForCommand() + 1 + frame.FCSLength
	req := phy.HeaderBytes + reqMPDU
	data := frame.DataOnAirBytes(payloadBytes, frame.AddrShort, frame.AddrShort, true)
	ex := DownlinkExchange{
		RequestBytes: req,
		DataBytes:    data,
	}
	// TX: the data request and the final acknowledgment.
	ex.TxOnTime = phy.TxDuration(req) + frame.AckDuration
	// RX: ack of the request, then the data frame itself.
	ex.RxOnTime = frame.AckDuration + phy.TxDuration(data)
	return ex
}

// MHRLengthForCommand is the MHR of an intra-PAN short/short MAC command.
func MHRLengthForCommand() int {
	return frame.MHRLength(frame.AddrShort, frame.AddrShort, true)
}
