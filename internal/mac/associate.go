package mac

import (
	"errors"
	"time"

	"dense802154/internal/frame"
	"dense802154/internal/phy"
)

// Association (§7.5.3.1): before the dense network of the case study can
// run, each of its 1600 devices must join a PAN: it sends an association
// request command (using its 64-bit extended address), the coordinator
// acknowledges, and after macResponseWaitTime the device polls with a data
// request to collect the association response — an indirect transmission
// carrying its newly assigned 16-bit short address.

// AssociationStatus is the §7.3.2.3 response status.
type AssociationStatus byte

// Association response statuses.
const (
	AssocSuccess       AssociationStatus = 0x00
	AssocPANAtCapacity AssociationStatus = 0x01
	AssocAccessDenied  AssociationStatus = 0x02
)

// String implements fmt.Stringer.
func (s AssociationStatus) String() string {
	switch s {
	case AssocSuccess:
		return "success"
	case AssocPANAtCapacity:
		return "pan-at-capacity"
	case AssocAccessDenied:
		return "access-denied"
	default:
		return "reserved"
	}
}

// Reserved short addresses (§7.1.1.4).
const (
	AddrBroadcast   = 0xFFFF // broadcast
	AddrNoShortAddr = 0xFFFE // associated but using extended addressing
	AddrCoordinator = 0x0000 // conventional coordinator address
)

// ErrPoolExhausted is returned when no short addresses remain.
var ErrPoolExhausted = errors.New("mac: short address pool exhausted")

// AddressPool is the coordinator's short-address allocator.
type AddressPool struct {
	next uint16
	free []uint16
	used map[uint16]bool
}

// NewAddressPool allocates addresses starting at `start` (typically 1,
// keeping 0x0000 for the coordinator).
func NewAddressPool(start uint16) *AddressPool {
	if start == 0 {
		start = 1
	}
	return &AddressPool{next: start, used: make(map[uint16]bool)}
}

// Assign hands out the next free short address, recycling released ones
// first. Reserved values are skipped.
func (p *AddressPool) Assign() (uint16, error) {
	if n := len(p.free); n > 0 {
		a := p.free[n-1]
		p.free = p.free[:n-1]
		p.used[a] = true
		return a, nil
	}
	for p.next >= 1 {
		a := p.next
		if a == AddrNoShortAddr || a == AddrBroadcast {
			return 0, ErrPoolExhausted
		}
		p.next++
		if !p.used[a] {
			p.used[a] = true
			return a, nil
		}
	}
	return 0, ErrPoolExhausted
}

// Release returns an address to the pool.
func (p *AddressPool) Release(a uint16) {
	if p.used[a] {
		delete(p.used, a)
		p.free = append(p.free, a)
	}
}

// InUse reports the number of assigned addresses.
func (p *AddressPool) InUse() int { return len(p.used) }

// ResponseWaitTime is macResponseWaitTime: the delay before the device
// polls for the association response (32 · aBaseSuperframeDuration
// symbols at the 2450 MHz rate ≈ 30.7 ms... the 2003 default is
// aResponseWaitTime = 32·aBaseSuperframeDuration symbols).
const ResponseWaitTime = 32 * BaseSuperframeDuration / 2 // 245.76 ms

// AssociationExchange is the device-side radio cost of one association.
type AssociationExchange struct {
	RequestBytes  int // association request command on air
	ResponseBytes int // association response command on air
	PollBytes     int // data request command on air
	TxOnTime      time.Duration
	RxOnTime      time.Duration
}

// NewAssociationExchange sizes the §7.5.3.1 message sequence. The request
// and response carry 64-bit extended addressing on the device side (no
// short address exists yet).
func NewAssociationExchange() AssociationExchange {
	// Association request: dst = coordinator (short), src = extended,
	// payload = command id + 1 capability byte.
	reqMPDU := frame.MHRLength(frame.AddrShort, frame.AddrExtended, true) + 2 + frame.FCSLength
	// Data request (§7.3.2.4, extended source while unassociated).
	pollMPDU := frame.MHRLength(frame.AddrShort, frame.AddrExtended, true) + 1 + frame.FCSLength
	// Association response: dst = extended, src = coordinator short,
	// payload = command id + 2-byte short address + 1 status byte.
	respMPDU := frame.MHRLength(frame.AddrExtended, frame.AddrShort, true) + 4 + frame.FCSLength

	ex := AssociationExchange{
		RequestBytes:  phy.HeaderBytes + reqMPDU,
		ResponseBytes: phy.HeaderBytes + respMPDU,
		PollBytes:     phy.HeaderBytes + pollMPDU,
	}
	// Device transmits: request, poll, and the final ack of the response.
	ex.TxOnTime = phy.TxDuration(ex.RequestBytes) +
		phy.TxDuration(ex.PollBytes) + frame.AckDuration
	// Device receives: two acks (request, poll) and the response frame.
	ex.RxOnTime = 2*frame.AckDuration + phy.TxDuration(ex.ResponseBytes)
	return ex
}
