package mac

import (
	"testing"
	"time"

	"dense802154/internal/frame"
	"dense802154/internal/phy"
)

func TestIndirectQueueFlow(t *testing.T) {
	q := NewIndirectQueue(0)
	if err := q.Queue(0x10, []byte("a"), 0); err != nil {
		t.Fatal(err)
	}
	if err := q.Queue(0x10, []byte("b"), time.Second); err != nil {
		t.Fatal(err)
	}
	if err := q.Queue(0x20, []byte("c"), 2*time.Second); err != nil {
		t.Fatal(err)
	}
	if q.Len() != 3 {
		t.Fatalf("len = %d", q.Len())
	}
	pend := q.Pending()
	if len(pend) != 2 || pend[0] != 0x10 || pend[1] != 0x20 {
		t.Fatalf("pending = %v", pend)
	}
	if !q.HasPending(0x10) || q.HasPending(0x99) {
		t.Fatal("HasPending")
	}
	// FIFO per destination, frame-pending bit set while more remain.
	e, more, err := q.Extract(0x10)
	if err != nil || string(e.Payload) != "a" || !more {
		t.Fatalf("first extract: %v %v %v", e, more, err)
	}
	e, more, err = q.Extract(0x10)
	if err != nil || string(e.Payload) != "b" || more {
		t.Fatalf("second extract: %v %v %v", e, more, err)
	}
	if _, _, err := q.Extract(0x10); err != ErrNothingQueued {
		t.Fatalf("empty extract err = %v", err)
	}
}

func TestIndirectQueueCapacity(t *testing.T) {
	q := NewIndirectQueue(0)
	for i := 0; i < MaxPendingAddresses; i++ {
		if err := q.Queue(uint16(i+1), nil, 0); err != nil {
			t.Fatal(err)
		}
	}
	// An 8th distinct destination cannot be advertised.
	if err := q.Queue(0x99, nil, 0); err != ErrQueueFull {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
	// But another frame for an existing destination is fine.
	if err := q.Queue(1, []byte("more"), 0); err != nil {
		t.Fatal(err)
	}
}

func TestIndirectQueueExpiry(t *testing.T) {
	q := NewIndirectQueue(5 * time.Second)
	q.Queue(1, nil, 0)
	q.Queue(2, nil, 4*time.Second)
	if n := q.Expire(6 * time.Second); n != 1 {
		t.Fatalf("expired %d, want 1", n)
	}
	if q.HasPending(1) || !q.HasPending(2) {
		t.Fatal("wrong entry expired")
	}
	// Persistence 0: never expires.
	q0 := NewIndirectQueue(0)
	q0.Queue(1, nil, 0)
	if q0.Expire(time.Hour) != 0 {
		t.Fatal("persistence 0 must not expire")
	}
}

func TestDownlinkExchangeSizes(t *testing.T) {
	ex := NewDownlinkExchange(10)
	// Data request: PHY 6 + MHR 9 (intra-PAN short/short) + 1 cmd +
	// FCS 2 = 18 bytes.
	if ex.RequestBytes != 18 {
		t.Fatalf("request bytes = %d, want 18", ex.RequestBytes)
	}
	// Downlink data: PHY 6 + MHR 9 + 10 + FCS 2 = 27 bytes.
	if ex.DataBytes != 27 {
		t.Fatalf("data bytes = %d, want 27", ex.DataBytes)
	}
	// Node TX = request + its ack of the data frame.
	wantTx := phy.TxDuration(18) + frame.AckDuration
	if ex.TxOnTime != wantTx {
		t.Fatalf("tx on-time = %v, want %v", ex.TxOnTime, wantTx)
	}
	// Node RX = coordinator's ack + the data frame.
	wantRx := frame.AckDuration + phy.TxDuration(27)
	if ex.RxOnTime != wantRx {
		t.Fatalf("rx on-time = %v, want %v", ex.RxOnTime, wantRx)
	}
}

func TestDownlinkScalesWithPayload(t *testing.T) {
	small := NewDownlinkExchange(5)
	large := NewDownlinkExchange(100)
	if large.RxOnTime <= small.RxOnTime {
		t.Fatal("bigger downlink payload must mean more RX time")
	}
	if large.TxOnTime != small.TxOnTime {
		t.Fatal("node TX time is payload-independent (request + ack)")
	}
}
