package mac

import (
	"fmt"
)

// Rand is the minimal random source a Transaction draws its backoff delays
// from. Both *math/rand.Rand and *engine.RNG satisfy it; the interface keeps
// this package free of a concrete PRNG so callers can thread a value-typed
// generator through without allocation.
type Rand interface {
	Intn(n int) int
}

// Outcome is the transaction's reaction to a CCA result.
type Outcome int

// CCA outcomes.
const (
	// OutcomeNextCCA: the channel was clear but the contention window is
	// not exhausted; perform another CCA at the next slot boundary.
	OutcomeNextCCA Outcome = iota
	// OutcomeTransmit: CW consecutive clear CCAs observed; transmit at
	// the next slot boundary.
	OutcomeTransmit
	// OutcomeBackoff: the channel was busy; a new random backoff has been
	// drawn with an incremented exponent.
	OutcomeBackoff
	// OutcomeFailure: too many busy assessments; the transaction aborts
	// with a channel access failure.
	OutcomeFailure
)

// String implements fmt.Stringer.
func (o Outcome) String() string {
	switch o {
	case OutcomeNextCCA:
		return "next-cca"
	case OutcomeTransmit:
		return "transmit"
	case OutcomeBackoff:
		return "backoff"
	case OutcomeFailure:
		return "failure"
	default:
		return fmt.Sprintf("outcome(%d)", int(o))
	}
}

// Transaction is one slotted CSMA/CA channel-access attempt. It is a pure
// state machine advanced by its owner at backoff slot boundaries:
//
//	for each slot boundary:
//	    if t.CCADue() {
//	        busy := senseChannel()        // receiver on for phy.CCADuration
//	        switch t.CCAResult(busy) { ... }
//	    } else {
//	        t.AdvanceSlot()               // idle backoff slot
//	    }
//
// The zero value is not usable; create transactions with NewTransaction.
type Transaction struct {
	params CSMAParams
	rng    Rand

	nb      int // backoff (busy) counter
	cw      int // remaining clear CCAs needed
	be      int // current backoff exponent
	pending int // backoff slots remaining before the next CCA
	done    bool

	// Statistics.
	ccas       int
	busyCCAs   int
	waitSlots  int
	txGranted  bool
	accessFail bool
}

// NewTransaction starts a channel-access attempt: it draws the initial
// random delay uniformly from [0, 2^BE-1] backoff slots.
func NewTransaction(p CSMAParams, rng Rand) *Transaction {
	t := new(Transaction)
	t.Init(p, rng)
	return t
}

// Init (re)starts the transaction in place — the zero-allocation path for
// callers that embed Transaction by value (the Monte-Carlo contention shards
// and the netsim nodes). It resets every field, so a finished transaction's
// storage can be reused for a fresh attempt.
func (t *Transaction) Init(p CSMAParams, rng Rand) {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	*t = Transaction{params: p, rng: rng}
	t.be = p.effectiveBE(p.MinBE)
	t.cw = p.CW
	t.pending = rng.Intn(1 << uint(t.be))
}

// CCADue reports whether the transaction wants a clear channel assessment
// at the current slot boundary.
func (t *Transaction) CCADue() bool { return !t.done && t.pending == 0 }

// Done reports whether the transaction has terminated (transmit granted or
// access failure).
func (t *Transaction) Done() bool { return t.done }

// AdvanceSlot consumes one backoff slot. It panics if a CCA is due instead:
// skipping assessments would corrupt the algorithm.
func (t *Transaction) AdvanceSlot() {
	if t.done {
		return
	}
	if t.pending == 0 {
		panic("mac: AdvanceSlot called while a CCA is due")
	}
	t.pending--
	t.waitSlots++
}

// CCAResult feeds the outcome of a clear channel assessment performed at a
// slot boundary where CCADue() was true.
func (t *Transaction) CCAResult(busy bool) Outcome {
	if t.done {
		panic("mac: CCAResult on a finished transaction")
	}
	if t.pending != 0 {
		panic("mac: CCAResult without a due CCA")
	}
	t.ccas++
	if busy {
		t.busyCCAs++
		t.nb++
		if t.nb > t.params.MaxBackoffs {
			t.done = true
			t.accessFail = true
			return OutcomeFailure
		}
		t.cw = t.params.CW
		t.be = t.params.effectiveBE(t.be + 1)
		t.pending = t.rng.Intn(1 << uint(t.be))
		if t.pending == 0 {
			// Zero delay: the next CCA happens at the next boundary.
			return OutcomeBackoff
		}
		return OutcomeBackoff
	}
	t.cw--
	if t.cw > 0 {
		return OutcomeNextCCA
	}
	t.done = true
	t.txGranted = true
	return OutcomeTransmit
}

// Stats of a finished (or in-flight) transaction.

// CCAs reports the number of channel assessments performed.
func (t *Transaction) CCAs() int { return t.ccas }

// BusyCCAs reports how many assessments found the channel busy.
func (t *Transaction) BusyCCAs() int { return t.busyCCAs }

// WaitSlots reports the number of idle backoff slots consumed.
func (t *Transaction) WaitSlots() int { return t.waitSlots }

// Granted reports whether the transaction ended with transmission access.
func (t *Transaction) Granted() bool { return t.txGranted }

// Failed reports whether the transaction ended in channel access failure.
func (t *Transaction) Failed() bool { return t.accessFail }

// BackoffExponent exposes the current backoff exponent (for tests and
// instrumentation).
func (t *Transaction) BackoffExponent() int { return t.be }

// Backoffs exposes the busy-CCA counter NB.
func (t *Transaction) Backoffs() int { return t.nb }
