package mac

import (
	"math"
	"testing"
	"time"

	"dense802154/internal/frame"
)

func TestBaseSuperframeDuration(t *testing.T) {
	// Paper: Tib_min = 15.36 ms.
	if BaseSuperframeDuration != 15360*time.Microsecond {
		t.Fatalf("base superframe = %v", BaseSuperframeDuration)
	}
}

func TestBeaconIntervalScaling(t *testing.T) {
	// Paper's case study: BO = 6 -> Tib = 15.36ms · 64 = 983.04 ms.
	if got := BeaconInterval(6); got != 983040*time.Microsecond {
		t.Fatalf("Tib(BO=6) = %v", got)
	}
	if got := BeaconInterval(0); got != BaseSuperframeDuration {
		t.Fatalf("Tib(BO=0) = %v", got)
	}
}

func TestAckTiming(t *testing.T) {
	// Paper: t_ack- = 192 µs, t_ack+ = 864 µs.
	if AckWaitMin != 192*time.Microsecond {
		t.Fatalf("t_ack- = %v", AckWaitMin)
	}
	if AckWaitMax != 864*time.Microsecond {
		t.Fatalf("t_ack+ = %v", AckWaitMax)
	}
}

func TestIFS(t *testing.T) {
	if SIFS != 192*time.Microsecond || LIFS != 640*time.Microsecond {
		t.Fatalf("SIFS/LIFS = %v/%v", SIFS, LIFS)
	}
	if IFSFor(18) != SIFS {
		t.Fatal("18-byte MPDU takes SIFS")
	}
	if IFSFor(19) != LIFS {
		t.Fatal("19-byte MPDU takes LIFS")
	}
}

func TestNewSuperframeValidation(t *testing.T) {
	if _, err := NewSuperframe(6, 6); err != nil {
		t.Fatal(err)
	}
	if _, err := NewSuperframe(15, 6); err == nil {
		t.Error("BO=15 must be rejected")
	}
	if _, err := NewSuperframe(4, 6); err == nil {
		t.Error("SO > BO must be rejected")
	}
	bad := Superframe{BO: 6, SO: 6, FinalCAPSlot: 16}
	if bad.Validate() == nil {
		t.Error("final CAP slot out of range accepted")
	}
	// Tiny CAP: final slot 0 at SO=0 is 60 symbols < aMinCAPLength.
	tiny := Superframe{BO: 0, SO: 0, FinalCAPSlot: 0}
	if tiny.Validate() == nil {
		t.Error("CAP below aMinCAPLength accepted")
	}
}

func TestSuperframeGeometry(t *testing.T) {
	sf, err := NewSuperframe(6, 6)
	if err != nil {
		t.Fatal(err)
	}
	if sf.BeaconInterval() != 983040*time.Microsecond {
		t.Fatal("beacon interval")
	}
	if sf.ActiveDuration() != sf.BeaconInterval() {
		t.Fatal("SO=BO means fully active")
	}
	if sf.InactiveDuration() != 0 {
		t.Fatal("no inactive portion at SO=BO")
	}
	if sf.SlotDuration() != sf.ActiveDuration()/16 {
		t.Fatal("slot duration")
	}
	if sf.CAPDuration() != sf.ActiveDuration() {
		t.Fatal("full CAP when FinalCAPSlot=15")
	}
	if sf.CFPDuration() != 0 {
		t.Fatal("no CFP by default")
	}
	if got := sf.DutyCycle(); got != 1 {
		t.Fatalf("duty cycle = %v", got)
	}
	if sf.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestSuperframeDutyCycleSixteenth(t *testing.T) {
	// The paper: "switched off up to 15/16 of the time" — BO-SO=4 gives
	// 1/16 duty cycle.
	sf, err := NewSuperframe(6, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := sf.DutyCycle(); math.Abs(got-1.0/16) > 1e-12 {
		t.Fatalf("duty cycle = %v, want 1/16", got)
	}
	if sf.InactiveDuration() != sf.BeaconInterval()-sf.ActiveDuration() {
		t.Fatal("inactive duration")
	}
}

func TestBackoffSlots(t *testing.T) {
	sf, _ := NewSuperframe(6, 6)
	// 983.04 ms / 320 µs = 3072 backoff periods.
	if got := sf.BackoffSlots(); got != 3072 {
		t.Fatalf("backoff slots = %d, want 3072", got)
	}
}

func TestChannelLoadMatchesCaseStudy(t *testing.T) {
	// 100 nodes × 4.256 ms / 983.04 ms ≈ 0.433 — the paper's "load of
	// 42% in each channel" (they quote the nominal 42%).
	sf, _ := NewSuperframe(6, 6)
	load := sf.ChannelLoad(100, frame.PaperPacketDuration(120))
	if load < 0.41 || load < 0.42 && load > 0.45 || load > 0.45 {
		t.Fatalf("case-study load = %v, want ≈0.42-0.44", load)
	}
}

func TestGTSAllocation(t *testing.T) {
	sf, _ := NewSuperframe(6, 6)
	db := NewGTSDB(sf)
	d1, err := db.Allocate(0x10, 2, false)
	if err != nil {
		t.Fatal(err)
	}
	if d1.StartSlot != 14 || d1.Length != 2 {
		t.Fatalf("first GTS = %+v, want start 14 len 2", d1)
	}
	if db.FinalCAPSlot() != 13 {
		t.Fatalf("final CAP slot = %d", db.FinalCAPSlot())
	}
	d2, err := db.Allocate(0x20, 3, true)
	if err != nil {
		t.Fatal(err)
	}
	if d2.StartSlot != 11 {
		t.Fatalf("second GTS start = %d, want 11", d2.StartSlot)
	}
	if db.Directions() != 0b10 {
		t.Fatalf("directions = %b", db.Directions())
	}
	if _, ok := db.Lookup(0x10); !ok {
		t.Fatal("lookup")
	}
	if _, ok := db.Lookup(0x99); ok {
		t.Fatal("phantom lookup")
	}
	// Duplicate.
	if _, err := db.Allocate(0x10, 1, false); err != ErrGTSDuplicate {
		t.Fatalf("duplicate err = %v", err)
	}
	// Deallocate repacks.
	if err := db.Deallocate(0x10); err != nil {
		t.Fatal(err)
	}
	d, _ := db.Lookup(0x20)
	if d.StartSlot != 13 {
		t.Fatalf("repacked start = %d, want 13", d.StartSlot)
	}
	if err := db.Deallocate(0x10); err != ErrGTSNotFound {
		t.Fatalf("double dealloc err = %v", err)
	}
}

func TestGTSLimits(t *testing.T) {
	sf, _ := NewSuperframe(6, 6)
	db := NewGTSDB(sf)
	if _, err := db.Allocate(1, 0, false); err == nil {
		t.Error("zero-length GTS accepted")
	}
	// Seven 1-slot GTS fit; the 8th descriptor must fail.
	for i := 0; i < 7; i++ {
		if _, err := db.Allocate(uint16(i+1), 1, false); err != nil {
			t.Fatalf("alloc %d: %v", i, err)
		}
	}
	if _, err := db.Allocate(99, 1, false); err != ErrGTSFull {
		t.Fatalf("8th descriptor err = %v", err)
	}
}

func TestGTSCAPProtection(t *testing.T) {
	// At SO=0 a slot is 60 symbols; aMinCAPLength=440 symbols requires at
	// least 8 CAP slots, so at most 8 slots may be dedicated.
	sf, _ := NewSuperframe(0, 0)
	db := NewGTSDB(sf)
	if _, err := db.Allocate(1, 8, false); err != nil {
		t.Fatalf("8-slot GTS at SO=0: %v", err)
	}
	if _, err := db.Allocate(2, 1, false); err != ErrGTSNoRoom {
		t.Fatalf("9th dedicated slot err = %v", err)
	}
}

func TestMaxNodesServed(t *testing.T) {
	// The paper's argument: seven descriptors cannot serve 100 nodes.
	sf, _ := NewSuperframe(6, 6)
	if got := MaxNodesServed(sf, 1); got != 7 {
		t.Fatalf("MaxNodesServed = %d, want 7", got)
	}
	if got := MaxNodesServed(sf, 2); got != 7 {
		t.Fatalf("MaxNodesServed(2) = %d, want 7 (descriptor-bound)", got)
	}
	sf0, _ := NewSuperframe(0, 0)
	if got := MaxNodesServed(sf0, 2); got != 4 {
		t.Fatalf("MaxNodesServed(SO=0, 2 slots) = %d, want 4 (CAP-bound)", got)
	}
}
