// Top-level benchmark harness: one benchmark per table/figure of the
// paper, each regenerating the artifact through the same driver the
// wsn-experiments command uses, plus micro-benchmarks of the hot paths.
//
//	go test -bench=. -benchmem
//
// The figure benchmarks run the drivers at reduced Monte-Carlo scale per
// iteration and report the headline reproduced quantities as custom
// metrics (µW, probabilities, nJ/bit), so a benchmark run doubles as a
// regression check of the reproduction.
package dense802154_test

import (
	"context"
	"testing"
	"time"

	"dense802154"
	"dense802154/internal/battery"
	"dense802154/internal/contention"
	"dense802154/internal/core"
	"dense802154/internal/des"
	"dense802154/internal/experiments"
	"dense802154/internal/lifetime"
	"dense802154/internal/netsim"
	"dense802154/internal/phy"
	"dense802154/internal/query"
	"dense802154/internal/store"
)

func benchOpts(i int) experiments.Options {
	return experiments.Options{Quick: true, Seed: int64(1000 + i)}
}

// runDriver executes a registered experiment driver b.N times.
func runDriver(b *testing.B, name string) {
	b.Helper()
	b.ReportAllocs()
	e, ok := experiments.ByName(name)
	if !ok {
		b.Fatalf("experiment %q not registered", name)
	}
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(benchOpts(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig3Characterization regenerates the radio characterization
// tables of Fig. 3.
func BenchmarkFig3Characterization(b *testing.B) { runDriver(b, "fig3") }

// BenchmarkFig4BER regenerates the BER sweep and eq. (1) regression of
// Fig. 4.
func BenchmarkFig4BER(b *testing.B) { runDriver(b, "fig4") }

// BenchmarkFig5Timeline regenerates the uplink transaction timeline of
// Fig. 5 from the event simulator's trace facility.
func BenchmarkFig5Timeline(b *testing.B) { runDriver(b, "fig5") }

// BenchmarkFig6Contention regenerates the four CSMA/CA characterization
// panels of Fig. 6 and reports the case-study operating point.
func BenchmarkFig6Contention(b *testing.B) {
	runDriver(b, "fig6")
	r := contention.Simulate(contention.Config{
		TargetLoad: 0.433, Superframes: 40, Seed: 42,
	})
	b.ReportMetric(r.PrCF, "Prcf@0.43")
	b.ReportMetric(r.PrCol, "Prcol@0.43")
	b.ReportMetric(r.MeanCCAs, "NCCA@0.43")
}

// BenchmarkFig7LinkAdaptation regenerates the energy-vs-path-loss family
// and switching thresholds of Fig. 7.
func BenchmarkFig7LinkAdaptation(b *testing.B) { runDriver(b, "fig7") }

// BenchmarkFig8PacketSize regenerates the energy-vs-payload study of
// Fig. 8.
func BenchmarkFig8PacketSize(b *testing.B) { runDriver(b, "fig8") }

// BenchmarkFig9Breakdown regenerates the phase/state breakdowns of Fig. 9
// and reports the reproduced shares.
func BenchmarkFig9Breakdown(b *testing.B) {
	runDriver(b, "fig9")
	cs, err := dense802154.RunCaseStudy(dense802154.DefaultParams(), dense802154.DefaultCaseStudy())
	if err != nil {
		b.Fatal(err)
	}
	sh := cs.Breakdown.Share()
	b.ReportMetric(sh[0]*100, "%beacon")
	b.ReportMetric(sh[1]*100, "%contention")
	b.ReportMetric(sh[2]*100, "%transmit")
	b.ReportMetric(sh[3]*100, "%ack")
	b.ReportMetric(cs.States.Fractions()[0]*100, "%shutdown")
}

// BenchmarkCaseStudy regenerates the §5 headline numbers (paper: 211 µW,
// 16% failure, 1.45 s delay) and reports the reproduced values.
func BenchmarkCaseStudy(b *testing.B) {
	runDriver(b, "casestudy")
	cs, err := dense802154.RunCaseStudy(dense802154.DefaultParams(), dense802154.DefaultCaseStudy())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(cs.AvgPower.MicroWatts(), "µW(paper:211)")
	b.ReportMetric(cs.MeanPrFail*100, "%fail(paper:16)")
	b.ReportMetric(cs.MeanDelay.Seconds(), "delay-s(paper:1.45)")
}

// BenchmarkImprovements regenerates the §5 radio ablations (paper: -12%
// for 2x faster transitions, -15% for the scalable receiver).
func BenchmarkImprovements(b *testing.B) {
	runDriver(b, "improvements")
	res, err := dense802154.EvaluateImprovements(dense802154.DefaultParams(), dense802154.DefaultCaseStudy())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(res.Rows[0].Reduction*100, "%fast(paper:12)")
	b.ReportMetric(res.Rows[1].Reduction*100, "%scalable(paper:15)")
}

// ---- serial-vs-parallel engine benchmarks ----
//
// The *Serial/*Parallel pairs run the same workload at Workers=1 and
// Workers=NumCPU; results are bit-identical (see the determinism tests),
// only the wall-clock differs. Seeds vary per iteration and per variant so
// the shared contention cache never serves a previously simulated point.

// benchCaseStudyWorkers integrates the §5 case study with a fresh
// Monte-Carlo contention source per iteration.
func benchCaseStudyWorkers(b *testing.B, workers int) {
	b.Helper()
	b.ReportAllocs()
	cfg := dense802154.DefaultCaseStudy()
	for i := 0; i < b.N; i++ {
		p := dense802154.DefaultParams()
		p.Workers = workers
		p.Contention = contention.NewMCSource(contention.Config{
			Superframes: 64,
			Seed:        int64(1_000_000*(workers+1) + i),
			Workers:     workers,
		})
		if _, err := dense802154.RunCaseStudy(p, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCaseStudySerial is the single-goroutine baseline of the §5
// case-study integration.
func BenchmarkCaseStudySerial(b *testing.B) { benchCaseStudyWorkers(b, 1) }

// BenchmarkCaseStudyParallel runs the same integration on NumCPU workers
// (grid points and Monte-Carlo shards both parallel).
func BenchmarkCaseStudyParallel(b *testing.B) { benchCaseStudyWorkers(b, 0) }

// benchFig6Workers rebuilds the four Fig. 6 curve families.
func benchFig6Workers(b *testing.B, workers int) {
	b.Helper()
	b.ReportAllocs()
	loads := []float64{0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}
	for i := 0; i < b.N; i++ {
		base := contention.Config{
			Superframes: 32,
			Seed:        int64(2_000_000*(workers+1) + i),
			Workers:     workers,
		}
		for _, L := range []int{10, 20, 50, 100} {
			contention.BuildCurve(L, loads, base)
		}
	}
}

// BenchmarkFig6ContentionSerial is the single-goroutine baseline of the
// Fig. 6 contention characterization.
func BenchmarkFig6ContentionSerial(b *testing.B) { benchFig6Workers(b, 1) }

// BenchmarkFig6ContentionParallel builds the same curves on NumCPU workers
// (load points and superframe shards both parallel).
func BenchmarkFig6ContentionParallel(b *testing.B) { benchFig6Workers(b, 0) }

// BenchmarkModelVsSim runs the validation experiment: analytical model vs
// discrete-event simulation.
func BenchmarkModelVsSim(b *testing.B) { runDriver(b, "validate") }

// BenchmarkExtBLE quantifies the Battery Life Extension rejection (EXT1).
func BenchmarkExtBLE(b *testing.B) { runDriver(b, "ble") }

// BenchmarkExtGTS quantifies the GTS capacity argument (EXT2).
func BenchmarkExtGTS(b *testing.B) { runDriver(b, "gts") }

// BenchmarkAblationContentionModel compares Monte-Carlo vs closed-form
// contention sources (ABL1).
func BenchmarkAblationContentionModel(b *testing.B) { runDriver(b, "contmodel") }

// BenchmarkAblationArrival compares arrival models (ABL2).
func BenchmarkAblationArrival(b *testing.B) { runDriver(b, "arrival") }

// BenchmarkExtBeaconOrder sweeps the beacon order (EXT3).
func BenchmarkExtBeaconOrder(b *testing.B) { runDriver(b, "bosweep") }

// BenchmarkExtLifetime computes supply lifetimes (EXT4).
func BenchmarkExtLifetime(b *testing.B) { runDriver(b, "lifetime") }

// BenchmarkExtDownlink costs the indirect exchange (EXT5).
func BenchmarkExtDownlink(b *testing.B) { runDriver(b, "downlink") }

// BenchmarkExtBands compares the three PHY bands (EXT6).
func BenchmarkExtBands(b *testing.B) { runDriver(b, "bands") }

// BenchmarkExtDutyCycle sweeps the superframe order (EXT7).
func BenchmarkExtDutyCycle(b *testing.B) { runDriver(b, "sosweep") }

// BenchmarkValPtrDistribution validates eqs. (7)-(8) (VAL2).
func BenchmarkValPtrDistribution(b *testing.B) { runDriver(b, "ptr") }

// ---- micro-benchmarks of the hot paths ----

// BenchmarkModelEvaluate measures one closed-form model evaluation.
func BenchmarkModelEvaluate(b *testing.B) {
	b.ReportAllocs()
	p := dense802154.DefaultParams()
	p.Contention = contention.Approx{} // keep it pure-analytical
	p.TXLevelIndex = 7
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Evaluate(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkContentionMC measures one Monte-Carlo superframe of the
// case-study channel.
func BenchmarkContentionMC(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		contention.Simulate(contention.Config{
			TargetLoad: 0.433, Superframes: 1, Seed: int64(i),
		})
	}
}

// BenchmarkNetsimSuperframe measures one discrete-event superframe of the
// 100-node channel on the pooled run path (the arena recycles across
// iterations exactly as it does across replica sweeps).
func BenchmarkNetsimSuperframe(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		netsim.Run(netsim.Config{Nodes: 100, Superframes: 1, Seed: int64(i)})
	}
}

// BenchmarkNetsimDense200 measures the 200-node dense operating regime of
// the paper's Fig. 6-8 surfaces over four superframes — the scenario whose
// per-CCA medium scans motivated the end-time-ordered active-set index.
func BenchmarkNetsimDense200(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		netsim.Run(netsim.Config{Nodes: 200, Superframes: 4, Seed: int64(i)})
	}
}

// BenchmarkRunReplicas measures a whole replica sweep at the dense 200-node
// configuration — the workload run-state recycling targets: every replica
// after a worker's first reuses that worker's arena. Workers is pinned to 2
// so allocs/op stays comparable across machines with different core counts.
func BenchmarkRunReplicas(b *testing.B) {
	b.ReportAllocs()
	cfg := netsim.Config{Nodes: 200, Superframes: 4}
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i)
		if _, err := netsim.RunReplicas(context.Background(), cfg, 8, 2); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDESFastForward mirrors the wsn-bench suite's DESFastForward
// workload: a pre-sorted sparse timeline parked in the kernel's far band and
// drained in one go — the idle fast-forward path of a lifetime run.
func BenchmarkDESFastForward(b *testing.B) {
	b.ReportAllocs()
	s := des.New(1)
	s.SetDispatcher(func(kind, actor int32, arg time.Duration) {})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 4096; j++ {
			s.ScheduleEvent(time.Duration(j)*time.Millisecond, 0, 0, 0)
		}
		s.Run()
	}
}

// BenchmarkNetsimLifetime mirrors the wsn-bench suite's NetsimLifetime
// workload: one full battery-lifetime integration — epoch-sampled DES with
// steady-state fast-forward — until the last of eight nodes dies.
func BenchmarkNetsimLifetime(b *testing.B) {
	b.ReportAllocs()
	cfg := lifetime.Config{
		Sim:              netsim.Config{Nodes: 8, Superframes: 1},
		Supply:           battery.Supply{CapacityJ: 0.5, SelfDischargePerYear: 0.01},
		EpochSuperframes: 4,
	}
	for i := 0; i < b.N; i++ {
		cfg.Sim.Seed = int64(i)
		lifetime.Run(cfg)
	}
}

// BenchmarkDespreadByte measures chip-level despreading of one octet.
func BenchmarkDespreadByte(b *testing.B) {
	b.ReportAllocs()
	chips := phy.SpreadBytes([]byte{0xA5})
	for i := 0; i < b.N; i++ {
		phy.DespreadBytes(chips)
	}
}

// storeBenchQuery mirrors the wsn-bench suite's store workload: the standard
// 6-task grid query.
func storeBenchQuery() query.Query {
	seed := int64(3)
	return query.Query{
		Kind:     query.KindGrid,
		Params:   &query.ParamsWire{Contention: &query.ContentionWire{Superframes: 8, Seed: &seed}},
		Losses:   &query.Axis{Values: []query.Float{55, 70, 85}},
		Payloads: &query.IntAxis{Values: []int{20, 100}},
	}
}

// BenchmarkStoreKey measures content-key derivation — canonical encode plus
// SHA-256, the fixed per-query cost of every result-store lookup.
func BenchmarkStoreKey(b *testing.B) {
	b.ReportAllocs()
	q := storeBenchQuery()
	for i := 0; i < b.N; i++ {
		if _, ok := store.KeyFor(q); !ok {
			b.Fatal("query not keyable")
		}
	}
}

// BenchmarkStoreTaskHit measures the memory-tier task hit — the path a warm
// worker rides once per task instead of recomputing it.
func BenchmarkStoreTaskHit(b *testing.B) {
	b.ReportAllocs()
	st, err := store.New(store.Config{})
	if err != nil {
		b.Fatal(err)
	}
	key, _ := store.KeyFor(storeBenchQuery())
	st.PutTask(key, 0, make([]byte, 512))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := st.GetTask(key, 0); !ok {
			b.Fatal("miss on warm store")
		}
	}
}

// BenchmarkStoreResultHit measures the whole-query body hit — the O(1)
// answer path of a warm /v2/query.
func BenchmarkStoreResultHit(b *testing.B) {
	b.ReportAllocs()
	st, err := store.New(store.Config{})
	if err != nil {
		b.Fatal(err)
	}
	key, _ := store.KeyFor(storeBenchQuery())
	st.PutResult(key, make([]byte, 4096))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := st.GetResult(key); !ok {
			b.Fatal("miss on warm store")
		}
	}
}
