// Package dense802154 reproduces Bougard, Catthoor, Daly, Chandrakasan and
// Dehaene, "Energy Efficiency of the IEEE 802.15.4 Standard in Dense
// Wireless Microsensor Networks: Modeling and Improvement Perspectives"
// (DATE 2005) as a self-contained Go library.
//
// # Entry point: the unified query API
//
// The whole model surface is driven through one declarative, versioned
// request type: a Query names an operating point in the paper's parameter
// space (radio, BER model, BO/SO, payload, load, path-loss population,
// improvement flags — or a grid of them) plus a kind selecting what to
// compute, and Run returns one tagged ResultSet:
//
//	rs, err := dense802154.Run(ctx, dense802154.Query{
//		Kind: dense802154.KindEvaluate, // defaults: the paper's §5 node
//	})
//	m := rs.Results[0].Value().(dense802154.Metrics)
//	// m.AvgPower, m.PrFail, m.Delay, m.Breakdown ...
//
// The twelve kinds cover the analytical model (evaluate, batch), the §5
// population integration (casestudy), the Fig. 7/8 sweeps (pathloss-sweep,
// thresholds, payload-sweep), the discrete-event simulator (simulate,
// replicas), the network-lifetime integrator (lifetime), the cross-model
// catalog (scenario), the registered paper
// drivers (experiment) and the joint product grid (grid) sweeping several
// axes at once — losses × payloads × beacon orders × node counts, the
// paper-scale Fig. 6 surface workload. Grid axes are fields, expressed as
// explicit lists or ranges — the Query type is JSON-shaped, so a request
// document works verbatim across every transport:
//
//	{"kind":"pathloss-sweep","losses":{"from":55,"to":95,"points":81}}
//	{"kind":"payload-sweep","payloads":{"values":[20,60,120]}}
//	{"kind":"replicas","sim":{"nodes":100},"replicas":8}
//	{"kind":"grid","losses":{"from":55,"to":95,"points":9},
//	 "payloads":{"values":[20,60,120]},"bos":{"values":[6,7,8]},
//	 "nodes":{"values":[10,50,200]}}
//
// Every kind accepts "timeout_ms", a per-query execution deadline
// propagated into every task context (locally and across distributed
// shards); a query either completes with its full deterministic result or
// fails with a deadline error — the HTTP layer answers a structured 504.
//
// Queries validate eagerly (field-scoped errors), compile to a
// deterministic plan of engine tasks and execute on the shared worker
// pool; RunStream additionally yields every TaskResult in plan order
// (batch elements, simulation replicas) while later tasks still compute.
// The same JSON-shaped document runs in-process, over HTTP (POST
// /v2/query) and on the command line (cmd/wsn-query), producing
// bit-identical bytes through all three (ResultSet.Encode is byte-stable).
// A new scenario axis is a new Query field — not a new function, endpoint,
// codec and flag set.
//
// # Classic facade functions (maintained, frozen)
//
// The per-computation facades — Evaluate, EvaluateBatch, RunCaseStudy,
// EnergyVsPathLoss, Thresholds, EnergyVsPayload, Simulate,
// SimulateReplicas, RunScenario, RunExperiment and their *Ctx variants —
// are thin wrappers over Run, kept for typed convenience and backward
// compatibility. They are maintained but frozen: new capability lands as
// Query fields and kinds, and the committed api_surface.golden test pins
// the exported surface so accidental breaking changes fail CI with a
// reviewable diff.
//
//	p := dense802154.DefaultParams()
//	m, err := dense802154.Evaluate(p) // ≡ Run(ctx, Query{Kind: KindEvaluate, ...})
//
// # Concurrency and determinism
//
// Every computation — single evaluations, sweeps, Monte-Carlo contention
// characterizations, simulation replicas — runs on a worker pool sized by
// the relevant Workers knob, resolved by one shared rule (0 ⇒
// runtime.NumCPU(), 1 ⇒ serial). Results are deterministic and
// worker-count independent: tasks are keyed by plan/grid index, per-shard
// RNG seeds derive from the run seed alone, and identical contention
// points are simulated once per process through a shared memoized cache.
// The cache is LRU-bounded on request (SetContentionCacheLimit),
// instrumented (ContentionCacheStats) and resettable
// (ContentionCacheReset). A canceled context stops Run, RunStream and
// every *Ctx facade promptly with ctx.Err().
//
// # HTTP service
//
// cmd/wsn-serve runs the query surface as an HTTP JSON API backed by
// NewHTTPHandler:
//
//	wsn-serve -addr :8080 -workers 8 -cache-size 4096 -timeout 2m
//
//	# liveness and counters
//	curl localhost:8080/healthz
//	curl localhost:8080/v1/stats
//
//	# the unified endpoint: one Query document per computation
//	curl -d '{"kind":"evaluate","params":{"payload_bytes":60,"load":0.25}}' localhost:8080/v2/query
//	curl -d '{"kind":"casestudy"}' localhost:8080/v2/query
//	curl -d '{"kind":"pathloss-sweep","losses":{"from":55,"to":95,"points":81}}' localhost:8080/v2/query
//	curl -d '{"kind":"replicas","sim":{"nodes":100},"replicas":8}' localhost:8080/v2/query
//
//	# NDJSON streaming: task results in plan order, then a summary line
//	curl -N -d '{"kind":"batch","batch":[{"payload_bytes":20},{"payload_bytes":120}]}' \
//	  localhost:8080/v2/query/stream
//
// The frozen v1 routes (/v1/evaluate, /v1/batch, /v1/casestudy,
// /v1/sweep/*, /v1/simulate, /v1/experiments, /v1/scenarios) remain for
// existing clients; internal/service documents the exact v1 → v2 wire
// mapping. Requests carry optional "workers" fields, but the server clamps
// every grant to its own -workers token budget, so any number of clients
// shares one pool; results are bit-identical to in-process calls
// regardless of the grant. Validation failures return structured 400
// bodies naming the offending field, and a disconnecting client cancels
// its computation (observed between plan tasks, grid points and
// replicas). See examples/serveclient for a complete client. -pprof
// 127.0.0.1:6060 exposes net/http/pprof on a separate listener for
// production profiles of the simulation cores.
//
// # Distributed execution
//
// wsn-serve scales past one machine without changing a single result
// byte. Any wsn-serve is already a worker: POST /v2/tasks accepts a query
// plus a task index range and streams the corresponding results back as
// NDJSON in range order. Starting a server with -peers makes it a
// coordinator: /v2/query plans shard across the fleet and the returned
// ranges merge into a ResultSet byte-identical to a local run —
//
//	wsn-serve -addr :8081 &                              # worker
//	wsn-serve -addr :8082 &                              # worker
//	wsn-serve -addr :8080 -peers http://127.0.0.1:8081,http://127.0.0.1:8082
//
// The guarantee rests on properties the rest of the repository already
// enforces: plan tasks are pure functions of (query, index), seeds are
// pure functions of (root, index), and ResultSet encoding is byte-stable,
// so any shard is recomputable on any machine at any time. That purity is
// what makes the robustness policy simple (internal/dist):
//
//   - Workers are admitted by a /readyz probe and evicted on failure; an
//     evicted worker is re-probed on an interval and readmitted when it
//     answers, and a draining server flips /readyz to 503 before its
//     listener closes so coordinators stop dispatching into it.
//   - A shard that times out (-shard-timeout), errors, or disconnects
//     mid-stream is re-dispatched elsewhere with jittered exponential
//     backoff (-dist-attempts bounds attempts per range). Streams arrive
//     in range order, so a connection that died after k lines completed
//     exactly its first k tasks and only the remainder is recomputed.
//   - Stragglers — shards stalled past a threshold derived from the
//     per-task wall times every worker reports — are speculatively
//     duplicated on an idle worker; duplicates are deduplicated by task
//     index, so speculation changes latency, never bytes.
//   - A worker-reported compute error is deterministic by purity and
//     aborts the query; only transport failures are retried.
//   - With the whole fleet lost, execution degrades to local and still
//     completes. Jitter, retries and speculation affect timing only: the
//     merged bytes equal a single-machine Run in every case.
//
// The failure modes are tested through an injectable transport
// (dist.FaultTransport) that can delay, error, drop a stream mid-shard,
// or kill a worker at a chosen task index, plus a -fault-exit-after-tasks
// flag that makes a real worker process exit mid-plan; multi-process
// integration tests assert merged bytes == local bytes under each, and
// the wsn_dist_* metric families (dispatches, retries, re-dispatches,
// straggler speculation, fleet membership) expose the same machinery
// operationally.
//
// # Result store
//
// The same purity argument that lets any shard run on any machine also
// makes every result reusable: a plan task's bytes are a pure function of
// (query, index), so internal/store addresses them by content. The key is
// the SHA-256 of the query's canonical encoding — a normalized, byte-stable
// JSON form in which the execution-only fields (workers, trace,
// timeout_ms) are zeroed, so two queries share a cache line exactly when
// they describe the same computation, regardless of how parallel either
// run was. Under each query key the store holds the encoded per-task
// results and, for untraced queries, the full encoded ResultSet.
//
// The store is two-tiered. A bytes-bounded in-memory LRU (wsn-serve
// -store-mem, 0 disables) fronts an optional on-disk tier (-store-dir)
// whose files carry a trailing SHA-256 and are written
// temp-file-then-rename, so a crash mid-write or a flipped bit on disk
// degrades to a cache miss and a recompute — never a wrong byte. Because
// hits replay stored encodings, a cached answer is bit-identical to a
// fresh one; tests pin this at every layer.
//
// What it buys operationally:
//
//   - A repeated /v2/query is answered O(1) from the stored ResultSet with
//     zero engine work, and /v2/query/stream replays the same bytes.
//   - An interrupted stream persists the tasks it completed; the client's
//     retry resumes from those and recomputes only the remainder.
//   - In a fleet, the coordinator consults the store before dispatching
//     and stores every shard the workers return, while each worker's own
//     /v2/tasks handler serves cached task lines without recomputing.
//     Workers sharing a store directory make the fleet one shared shard
//     cache: any machine's past work answers any machine's future query.
//
// Scenario and experiment queries are excluded (their wire encoding
// is not exact under re-encoding); traced queries bypass the whole-query
// byte cache — traces are measured, not computed — but still reuse and
// populate per-task entries. The wsn_store_* families below expose hit
// rates, resident bytes and disk health; GET /v2/store/stats serves the
// same counters plus memory-tier occupancy as one JSON snapshot.
//
// # Observability
//
// GET /metrics serves the server's telemetry in the Prometheus text format
// (internal/telemetry: a zero-dependency registry whose encoding is
// byte-stable, parsed back and lint-checked in CI by
// internal/telemetry/metricslint). The exported families:
//
//	wsn_http_requests_total{route,code}         counter    requests by route pattern and status
//	wsn_http_request_duration_seconds{route}    histogram  request wall time
//	wsn_http_requests_in_flight                 gauge      requests currently executing
//	wsn_http_errors_total{route,class}          counter    non-2xx responses (class 4xx|5xx)
//	wsn_http_panics_total                       counter    handler/collector panics recovered
//	wsn_query_total{kind}                       counter    v2 queries by kind
//	wsn_query_tasks_total                       counter    plan tasks scheduled by v2 queries
//	wsn_worker_pool_capacity                    gauge      worker-token budget
//	wsn_worker_pool_in_use                      gauge      tokens currently held
//	wsn_worker_acquires_total                   counter    token-pool acquisitions
//	wsn_worker_wait_seconds                     histogram  wait for the first token
//	wsn_uptime_seconds                          gauge      seconds since server start
//	wsn_build_info{version,revision,goversion}  gauge      constant 1
//	wsn_engine_batches_total                    counter    Map/MapSlice batches
//	wsn_engine_task_seconds                     histogram  per-task execution time
//	wsn_engine_task_wait_seconds                histogram  per-task queue wait
//	wsn_contention_cache_hits_total             counter    characterization cache hits
//	wsn_contention_cache_misses_total           counter    characterizations computed
//	wsn_contention_cache_evictions_total        counter    LRU evictions
//	wsn_contention_cache_entries                gauge      resident characterizations
//	wsn_contention_cache_limit                  gauge      configured bound (0 = none)
//	wsn_netsim_runs_total                       counter    completed simulation runs
//	wsn_netsim_events_total                     counter    DES events dispatched
//	wsn_netsim_cca_attempts_total               counter    clear channel assessments
//	wsn_netsim_backoffs_total                   counter    CSMA/CA backoff draws
//	wsn_netsim_prune_fallback_total             counter    out-of-order medium full scans
//	wsn_netsim_heap_depth_max                   gauge      deepest event heap seen
//	wsn_lifetime_runs_total                     counter    completed lifetime integrations
//	wsn_lifetime_epochs_total                   counter    live-simulated epochs
//	wsn_lifetime_deaths_total                   counter    node deaths observed
//	wsn_lifetime_simulated_seconds_total        counter    network time live-simulated
//	wsn_lifetime_fast_forward_seconds_total     counter    network time skipped analytically
//	wsn_dist_queries_total                      counter    queries run through the coordinator
//	wsn_dist_shards_dispatched_total            counter    shard dispatches incl. retries/speculation
//	wsn_dist_retries_total                      counter    shard attempts after the first
//	wsn_dist_redispatch_total                   counter    ranges re-dispatched after worker failure
//	wsn_dist_straggler_redispatch_total         counter    speculative duplicates of stalled shards
//	wsn_dist_tasks_remote_total                 counter    tasks accepted from workers
//	wsn_dist_tasks_local_total                  counter    tasks computed locally
//	wsn_dist_local_fallback_total               counter    queries degraded to local execution
//	wsn_dist_worker_failures_total              counter    dispatch/stream/probe failures observed
//	wsn_dist_tasks_served_total                 counter    /v2/tasks lines served to coordinators
//	wsn_dist_workers_ready                      gauge      workers currently admitted
//	wsn_dist_workers_evicted                    gauge      workers pending readmission
//	wsn_store_hits_total                        counter    results served from the store
//	wsn_store_misses_total                      counter    lookups that fell through to compute
//	wsn_store_puts_total                        counter    entries written
//	wsn_store_evictions_total                   counter    memory-tier LRU evictions
//	wsn_store_disk_hits_total                   counter    misses promoted from the disk tier
//	wsn_store_disk_errors_total                 counter    disk entries rejected (corrupt/unreadable)
//	wsn_store_bytes                             gauge      memory-tier resident bytes
//	wsn_store_entries                           gauge      memory-tier resident entries
//
// A minimal Prometheus scrape config:
//
//	scrape_configs:
//	  - job_name: wsn-serve
//	    static_configs:
//	      - targets: ["localhost:8080"]
//
// Request logging is structured (-log-format text|json, -log-level) with a
// per-request id echoed in X-Request-Id; /healthz reports uptime and build
// info, and every cmd/* binary prints its module version and VCS stamp
// with -version. Queries opt into per-task execution tracing with
// {"trace":true} (or wsn-query -trace): the ResultSet (or the stream's
// done line) gains per-task wall times and replica seeds. Traces are
// measured, not computed — they are excluded from the byte-identity
// contract, which tracing never disturbs.
//
// # Command line
//
// cmd/wsn-query runs one Query document against the same layer:
//
//	echo '{"kind":"evaluate"}' | wsn-query
//	wsn-query -f sweep.json -workers 4
//	wsn-query -f replicas.json -stream   # NDJSON, plan order
//	wsn-query -f sweep.json -plan        # validate + print the plan
//
// # Scenario catalog and golden regression harness
//
// internal/scenario holds a committed catalog of ~17 named operating points
// spanning the axes the paper's figures only sample: density (5→200 nodes),
// traffic (λ ≈ 0.001→0.87), beacon order (BO 3→9), payload (20→123 B),
// path-loss populations reaching the >88 dB efficiency cliff, the §5
// scalable-receiver improvement, and network-lifetime integrations
// (battery-backed and energy-harvesting populations). Each scenario runs through BOTH the
// analytical model (integrated over its loss population) and the
// discrete-event simulator (replicated, with 95% confidence intervals), and
// their agreement is scored per metric against the scenario's declared
// tolerances (absolute + relative + CI slack).
//
// The committed golden files (internal/scenario/testdata/*.golden.json) pin
// every output byte. Runs are deterministic at any worker count, so on one
// platform a golden mismatch is a behavior change, not noise; across
// platforms, drift must stay inside the tolerances. The harness:
//
//	go test ./internal/scenario                          # verify goldens + agreement
//	go test ./internal/scenario -run TestGoldens -update # regenerate after an intended change
//	go run ./cmd/wsn-scenarios list                      # the catalog
//	go run ./cmd/wsn-scenarios run  [name ...]           # run, report agreement
//	go run ./cmd/wsn-scenarios diff [name ...]           # regression gate vs embedded goldens
//
// The service mirrors the catalog at GET /v1/scenarios (the catalog),
// GET /v1/scenarios/{name} (the committed golden) and the scenario query
// kind ({"kind":"scenario","scenario":name,"diff":true}). To add a
// scenario, append it to internal/scenario/catalog.go, regenerate with
// -update and commit both; see examples/scenarios for a walkthrough.
//
// # Network lifetime
//
// The paper's energy model exists to answer one field question: how long
// does a dense network live on finite batteries? The lifetime query kind
// (internal/lifetime) attaches a battery.Supply to every netsim node,
// integrates each node's per-state radio energy as the DES runs, kills
// nodes at a shutdown threshold — dead nodes leave the contention
// population live, so the survivors' draw shifts as the network thins —
// and reports first-node-death, partition (alive fraction crossing
// partition_frac, default 0.5) and last-death times with replica CIs,
// plus the fraction-alive-vs-time curve:
//
//	{"kind":"lifetime","sim":{"nodes":12,"seed":7},
//	 "lifetime":{"supply":"cr2032","epoch_superframes":16,"max_epochs":512},
//	 "replicas":8}
//
// Supplies are the internal/battery presets ("cr2032", "aa", "harvester")
// with per-field overrides (capacity_j, self_discharge_per_year,
// harvest_uw, threshold_j). A supply without finite capacity — or one
// whose harvest covers its drain — is sustainable: death times are +Inf
// and the run reports sustainable=true instead of looping forever.
//
// Checkpoint semantics: simulating months of beacons tick by tick would
// be hopeless, so the integrator samples. It live-simulates one epoch
// (epoch_superframes superframes) under real contention, treats the
// measured per-node power as the steady state, fast-forwards analytically
// to just before the next predicted death (self-discharge and harvest
// included), then live-simulates again. Deaths always occur inside a
// simulated epoch, at a beacon boundary; the fast-forward only skips
// spans where the population — and hence the power profile — is provably
// static. Results are deterministic and worker-count independent like
// every other kind, so lifetime queries shard across a fleet and land in
// the result store unchanged. The wsn_lifetime_* families report runs,
// epochs, deaths and the simulated-versus-skipped time split.
//
// Underneath, the DES queue parks pre-sorted timelines (beacon schedules,
// the common case in sparse/low-λ scenarios) in a FIFO far band beside
// the 4-ary near heap, popping the global (at, seq) minimum of the two —
// firing order is bit-identical to a single queue (pinned by replay tests
// against a reference implementation and by every committed golden), but
// parked events skip the heap sift entirely: the DESFastForward benchmark
// (4096-event pre-sorted timeline) runs 2.9x faster than the pre-band
// kernel (384 µs → 132 µs per drain), still at zero steady-state allocs.
//
// # Zero-allocation simulation cores
//
// Both event-driven cores run without steady-state heap allocation, so
// sustained Monte-Carlo and discrete-event workloads are CPU-bound rather
// than garbage-collector-bound:
//
//   - internal/des stores events by value in a flat 4-ary min-heap.
//     Models register one typed Dispatcher and schedule (kind, actor,
//     instant) triples instead of per-event closures; cancellation uses
//     generation-checked slot handles with free-list reuse.
//   - The Monte-Carlo contention shards (internal/contention) keep their
//     transaction population in a flat value slice with the CSMA/CA state
//     machines embedded (mac.Transaction.Init reuses storage in place),
//     recycle whole shards through a sync.Pool, and compare busy windows
//     with precomputed integer slot bounds.
//   - Every hot random stream is an engine.RNG — a single-word splitmix64
//     rand.Source64 — embedded by value and seeded via engine.DeriveSeed,
//     preserving bit-identical results at any worker count.
//   - Whole netsim runs recycle through a runner arena: netsim.Run draws a
//     *netsim.Runner from a sync.Pool, and Runner.Run resets node, radio
//     device, histogram, medium and event-heap storage in place instead of
//     reallocating it. Every piece of pooled state is rebuilt from the
//     Config and its derived seeds before use, so a recycled run is bit
//     identical to a fresh one (pinned by TestRunnerRecycleBitIdentity),
//     and returned Results copy what they keep so they never alias the
//     arena. Replica sweeps (netsim.RunReplicas, the scenario harness)
//     reuse one arena per worker across all replicas.
//   - The simulated medium keeps active transmissions in two value-typed
//     binary heaps: an authoritative heap ordered by end time (expiry is a
//     prefix pop; collision marking on add scans only live transmissions)
//     and a node-free heap ordered by start time that answers the per-CCA
//     busy-window probe by comparing the earliest unexpired start against
//     the window — O(log n) instead of a linear scan. The start heap
//     retires stale entries lazily, which is sound because prune
//     thresholds are protocol instants on the 320 µs CSMA slot grid and
//     advance monotonically; a maxPrune watermark falls back to an exact
//     scan for any query behind the watermark, so correctness never
//     depends on that monotonicity.
//
// # Tracked benchmarks
//
// cmd/wsn-bench runs the tracked suite (serial/parallel engine pairs plus
// hot-path micro-benchmarks) and writes a JSON report of ns/op, B/op and
// allocs/op per benchmark:
//
//	go run ./cmd/wsn-bench -out BENCH_PR6.json   # refresh the baseline
//	go run ./cmd/wsn-bench -diff BENCH_PR6.json  # compare a fresh run
//
// The committed BENCH_*.json files form the repository's performance
// trajectory; CI regenerates a -quick report per push and diffs it against
// the baseline: ns/op ratios are warn-only (wall-clock is
// machine-dependent) while allocs/op regressions fail the job
// (-failallocs), backed by allocation-budget tests
// (netsim.TestRunAllocBudget and friends) that fail hard on setup or
// boxing regressions. To profile the hot paths under live load, start the
// service with a profiling listener (wsn-serve -pprof 127.0.0.1:6060) and
// capture /debug/pprof/profile while a replica-heavy query runs.
//
// See the examples directory for runnable scenarios and EXPERIMENTS.md for
// the paper-versus-reproduction comparison of every figure.
package dense802154
