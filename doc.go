// Package dense802154 reproduces Bougard, Catthoor, Daly, Chandrakasan and
// Dehaene, "Energy Efficiency of the IEEE 802.15.4 Standard in Dense
// Wireless Microsensor Networks: Modeling and Improvement Perspectives"
// (DATE 2005) as a self-contained Go library.
//
// The package is a facade over the implementation packages:
//
//   - the analytical energy/reliability model of the paper's §4
//     (Params/Evaluate), including the radio activation policy, link
//     adaptation (Thresholds, OptimalTXLevel), packet-size optimization
//     (EnergyVsPayload) and the 1600-node case study (RunCaseStudy);
//   - the measured CC2420 characterization of Fig. 3 (CC2420) and the
//     derived radios of the §5 improvement perspectives;
//   - the Monte-Carlo slotted CSMA/CA characterization behind Fig. 6
//     (ContentionConfig/SimulateContention);
//   - a cycle-accurate discrete-event network simulator used to validate
//     the model (SimConfig/Simulate);
//   - the experiment registry regenerating every table and figure
//     (Experiments, RunExperiment);
//   - a concurrent batch-evaluation engine (EvaluateBatch and the Workers
//     fields of Params/ContentionConfig/ExperimentOpts) running every sweep
//     on a worker pool;
//   - an HTTP JSON service exposing all of the above to remote clients
//     (NewHTTPHandler, cmd/wsn-serve) with a server-wide worker pool and a
//     bounded contention cache;
//   - a cross-model scenario catalog with a golden-file regression harness
//     (Scenarios, RunScenario, DiffScenario, cmd/wsn-scenarios) pinning
//     analytic-vs-simulated agreement across the operating space.
//
// # Quick start
//
//	p := dense802154.DefaultParams()
//	m, err := dense802154.Evaluate(p)
//	// m.AvgPower, m.PrFail, m.Delay, m.Breakdown ...
//
// # Concurrency and determinism
//
// Sweeps (RunCaseStudy, EnergyVsPathLoss, Thresholds, EnergyVsPayload,
// EvaluateBatch and the Monte-Carlo contention characterization) execute on
// a worker pool sized by the relevant Workers field (0 ⇒ runtime.NumCPU(),
// 1 ⇒ serial). Results are deterministic and worker-count independent:
// tasks are keyed by grid index, per-shard RNG seeds derive from the run
// seed alone, and identical contention points are simulated once per
// process through a shared memoized cache. The cache is LRU-bounded on
// request (SetContentionCacheLimit), instrumented (ContentionCacheStats)
// and still resettable (ContentionCacheReset). A canceled context stops
// EvaluateBatch, RunCaseStudyCtx, the sweep *Ctx variants and
// SimulateReplicas promptly with ctx.Err().
//
// # HTTP service
//
// cmd/wsn-serve runs the whole model surface as an HTTP JSON API backed by
// NewHTTPHandler:
//
//	wsn-serve -addr :8080 -workers 8 -cache-size 4096 -timeout 2m
//
//	# liveness and counters
//	curl localhost:8080/healthz
//	curl localhost:8080/v1/stats
//
//	# one model evaluation (empty fields default to the paper's §5 setup)
//	curl -d '{"params":{"payload_bytes":60,"load":0.25}}' localhost:8080/v1/evaluate
//
//	# a batch; add ?stream=1 (or "stream":true) for NDJSON as results land
//	curl -d '{"params":[{"payload_bytes":20},{"payload_bytes":120}]}' localhost:8080/v1/batch
//
//	# the 1600-node case study, the Fig. 7/8 sweeps, the simulator
//	curl -d '{}' localhost:8080/v1/casestudy
//	curl -d '{"params":{"load":0.1}}' localhost:8080/v1/sweep/pathloss
//	curl -d '{"params":{"load":0.1}}' localhost:8080/v1/sweep/thresholds
//	curl -d '{"sizes":[20,60,120]}' localhost:8080/v1/sweep/payload
//	curl -d '{"config":{"nodes":100},"replicas":8}' localhost:8080/v1/simulate
//
//	# registered paper drivers
//	curl localhost:8080/v1/experiments
//	curl -d '{"quick":true}' localhost:8080/v1/experiments/fig8
//
// Requests carry optional "workers" fields, but the server clamps every
// grant to its own -workers token budget, so any number of clients shares
// one pool; results are bit-identical to in-process calls regardless of
// the grant. -cache-size bounds the shared contention cache with LRU
// eviction; /v1/stats reports its hit/miss/eviction counters. Validation
// failures return structured 400 bodies naming the offending field, and a
// disconnecting client cancels its computation (observed between grid
// points, batch elements and replicas). See examples/serveclient for a
// complete client. -pprof 127.0.0.1:6060 exposes net/http/pprof on a
// separate listener for production profiles of the simulation cores.
//
// # Scenario catalog and golden regression harness
//
// internal/scenario holds a committed catalog of ~15 named operating points
// spanning the axes the paper's figures only sample: density (5→200 nodes),
// traffic (λ ≈ 0.001→0.87), beacon order (BO 3→9), payload (20→123 B),
// path-loss populations reaching the >88 dB efficiency cliff, and the §5
// scalable-receiver improvement. Each scenario runs through BOTH the
// analytical model (integrated over its loss population) and the
// discrete-event simulator (replicated, with 95% confidence intervals), and
// their agreement is scored per metric against the scenario's declared
// tolerances (absolute + relative + CI slack).
//
// The committed golden files (internal/scenario/testdata/*.golden.json) pin
// every output byte. Runs are deterministic at any worker count, so on one
// platform a golden mismatch is a behavior change, not noise; across
// platforms, drift must stay inside the tolerances. The harness:
//
//	go test ./internal/scenario                          # verify goldens + agreement
//	go test ./internal/scenario -run TestGoldens -update # regenerate after an intended change
//	go run ./cmd/wsn-scenarios list                      # the catalog
//	go run ./cmd/wsn-scenarios run  [name ...]           # run, report agreement
//	go run ./cmd/wsn-scenarios diff [name ...]           # regression gate vs embedded goldens
//
// The service mirrors the catalog at GET /v1/scenarios (the catalog),
// GET /v1/scenarios/{name} (the committed golden) and POST
// /v1/scenarios/{name} (a fresh run, optionally diffed against its golden).
// To add a scenario, append it to internal/scenario/catalog.go, regenerate
// with -update and commit both; see examples/scenarios for a walkthrough.
//
// # Zero-allocation simulation cores
//
// Both event-driven cores run without steady-state heap allocation, so
// sustained Monte-Carlo and discrete-event workloads are CPU-bound rather
// than garbage-collector-bound:
//
//   - internal/des stores events by value in a flat 4-ary min-heap.
//     Models register one typed Dispatcher and schedule (kind, actor,
//     instant) triples instead of per-event closures; cancellation uses
//     generation-checked slot handles with free-list reuse.
//   - The Monte-Carlo contention shards (internal/contention) keep their
//     transaction population in a flat value slice with the CSMA/CA state
//     machines embedded (mac.Transaction.Init reuses storage in place),
//     recycle whole shards through a sync.Pool, and compare busy windows
//     with precomputed integer slot bounds.
//   - Every hot random stream is an engine.RNG — a single-word splitmix64
//     rand.Source64 — embedded by value and seeded via engine.DeriveSeed,
//     preserving bit-identical results at any worker count.
//
// # Tracked benchmarks
//
// cmd/wsn-bench runs the tracked suite (serial/parallel engine pairs plus
// hot-path micro-benchmarks) and writes a JSON report of ns/op, B/op and
// allocs/op per benchmark:
//
//	go run ./cmd/wsn-bench -out BENCH_PR3.json   # refresh the baseline
//	go run ./cmd/wsn-bench -diff BENCH_PR3.json  # compare a fresh run
//
// The committed BENCH_*.json files form the repository's performance
// trajectory; CI regenerates a -quick report per push and diffs it
// warn-only against the baseline (allocs/op is the machine-independent
// signal, and dedicated allocation-budget tests fail hard on boxing
// regressions).
//
// See the examples directory for runnable scenarios and EXPERIMENTS.md for
// the paper-versus-reproduction comparison of every figure.
package dense802154
