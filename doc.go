// Package dense802154 reproduces Bougard, Catthoor, Daly, Chandrakasan and
// Dehaene, "Energy Efficiency of the IEEE 802.15.4 Standard in Dense
// Wireless Microsensor Networks: Modeling and Improvement Perspectives"
// (DATE 2005) as a self-contained Go library.
//
// The package is a facade over the implementation packages:
//
//   - the analytical energy/reliability model of the paper's §4
//     (Params/Evaluate), including the radio activation policy, link
//     adaptation (Thresholds, OptimalTXLevel), packet-size optimization
//     (EnergyVsPayload) and the 1600-node case study (RunCaseStudy);
//   - the measured CC2420 characterization of Fig. 3 (CC2420) and the
//     derived radios of the §5 improvement perspectives;
//   - the Monte-Carlo slotted CSMA/CA characterization behind Fig. 6
//     (ContentionConfig/SimulateContention);
//   - a cycle-accurate discrete-event network simulator used to validate
//     the model (SimConfig/Simulate);
//   - the experiment registry regenerating every table and figure
//     (Experiments, RunExperiment);
//   - a concurrent batch-evaluation engine (EvaluateBatch and the Workers
//     fields of Params/ContentionConfig/ExperimentOpts) running every sweep
//     on a worker pool.
//
// # Quick start
//
//	p := dense802154.DefaultParams()
//	m, err := dense802154.Evaluate(p)
//	// m.AvgPower, m.PrFail, m.Delay, m.Breakdown ...
//
// # Concurrency and determinism
//
// Sweeps (RunCaseStudy, EnergyVsPathLoss, Thresholds, EnergyVsPayload,
// EvaluateBatch and the Monte-Carlo contention characterization) execute on
// a worker pool sized by the relevant Workers field (0 ⇒ runtime.NumCPU(),
// 1 ⇒ serial). Results are deterministic and worker-count independent:
// tasks are keyed by grid index, per-shard RNG seeds derive from the run
// seed alone, and identical contention points are simulated once per
// process through a shared memoized cache (see ContentionCacheReset). A
// canceled context stops EvaluateBatch promptly with ctx.Err().
//
// See the examples directory for runnable scenarios and EXPERIMENTS.md for
// the paper-versus-reproduction comparison of every figure.
package dense802154
