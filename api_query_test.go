package dense802154_test

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"dense802154"
	"dense802154/internal/channel"
	"dense802154/internal/contention"
	"dense802154/internal/query"
)

// quickP builds the typed twin of the spec body used throughout this file:
// default §5 params with a short Monte-Carlo contention run.
func quickP() dense802154.Params {
	p := dense802154.DefaultParams()
	p.Contention = contention.NewMCSource(contention.Config{Superframes: 8, Seed: 3})
	return p
}

const quickSpec = `{"contention":{"superframes":8,"seed":3}}`

// runBoth executes the JSON query in-process and over HTTP and asserts the
// two encodings are bit-identical before returning the in-process set.
func runBoth(t *testing.T, ts *httptest.Server, body string) *dense802154.ResultSet {
	t.Helper()
	var q dense802154.Query
	if err := json.Unmarshal([]byte(body), &q); err != nil {
		t.Fatal(err)
	}
	rs, err := dense802154.Run(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	inproc, err := rs.Encode()
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v2/query", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	httpBytes, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HTTP %d: %s", resp.StatusCode, httpBytes)
	}
	if !bytes.Equal(inproc, httpBytes) {
		t.Fatalf("in-process Run and /v2/query disagree:\n proc: %s\n http: %s", inproc, httpBytes)
	}
	return rs
}

// TestQueryKindsMatchFacades is the redesign's observational-equivalence
// gate at the public surface: for every query kind, an in-process Run of
// the declarative spec, the /v2/query HTTP response and the legacy facade
// function produce bit-identical results.
func TestQueryKindsMatchFacades(t *testing.T) {
	ts := httptest.NewServer(dense802154.NewHTTPHandler(dense802154.ServeConfig{Workers: 2}))
	defer ts.Close()
	ctx := context.Background()

	t.Run("evaluate", func(t *testing.T) {
		rs := runBoth(t, ts, `{"kind":"evaluate","params":`+quickSpec+`}`)
		m, err := dense802154.Evaluate(quickP())
		if err != nil {
			t.Fatal(err)
		}
		if *rs.Results[0].Metrics != query.WireMetrics(m) {
			t.Fatal("facade Evaluate deviates from the query result")
		}
	})

	t.Run("batch", func(t *testing.T) {
		rs := runBoth(t, ts, `{"kind":"batch","batch":[`+quickSpec+`,{"contention":{"superframes":8,"seed":3},"payload_bytes":60}]}`)
		p2 := quickP()
		p2.PayloadBytes = 60
		ms, err := dense802154.EvaluateBatch(ctx, []dense802154.Params{quickP(), p2})
		if err != nil {
			t.Fatal(err)
		}
		for i, m := range ms {
			if *rs.Results[i].Metrics != query.WireMetrics(m) {
				t.Fatalf("facade EvaluateBatch[%d] deviates from the query result", i)
			}
		}
	})

	t.Run("casestudy", func(t *testing.T) {
		rs := runBoth(t, ts, `{"kind":"casestudy","params":`+quickSpec+`,"config":{"loss_grid_points":11}}`)
		cfg := dense802154.DefaultCaseStudy()
		cfg.LossGridPoints = 11
		res, err := dense802154.RunCaseStudy(quickP(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(*rs.Results[0].CaseStudy, query.WireCaseStudyResult(res)) {
			t.Fatal("facade RunCaseStudy deviates from the query result")
		}
	})

	t.Run("pathloss-sweep", func(t *testing.T) {
		rs := runBoth(t, ts, `{"kind":"pathloss-sweep","params":`+quickSpec+`,"losses":{"values":[60,75,90]}}`)
		curves, err := dense802154.EnergyVsPathLoss(quickP(), []float64{60, 75, 90})
		if err != nil {
			t.Fatal(err)
		}
		want := make([]query.EnergyCurveWire, len(curves))
		for i, c := range curves {
			want[i] = query.WireEnergyCurve(c)
		}
		if !reflect.DeepEqual(rs.Results[0].Curves, want) {
			t.Fatal("facade EnergyVsPathLoss deviates from the query result")
		}
	})

	t.Run("thresholds", func(t *testing.T) {
		rs := runBoth(t, ts, `{"kind":"thresholds","params":`+quickSpec+`,"losses":{"from":60,"to":80,"points":11}}`)
		ths, err := dense802154.Thresholds(quickP(), channel.LossGrid(60, 80, 11))
		if err != nil {
			t.Fatal(err)
		}
		want := make([]query.ThresholdWire, len(ths))
		for i, th := range ths {
			want[i] = query.WireThreshold(th)
		}
		if !reflect.DeepEqual(rs.Results[0].Thresholds, want) {
			t.Fatal("facade Thresholds deviates from the query result")
		}
	})

	t.Run("payload-sweep", func(t *testing.T) {
		rs := runBoth(t, ts, `{"kind":"payload-sweep","params":`+quickSpec+`,"payloads":{"values":[20,60,120]}}`)
		series, err := dense802154.EnergyVsPayload(quickP(), []int{20, 60, 120})
		if err != nil {
			t.Fatal(err)
		}
		want := query.WirePayloadSeries([]int{20, 60, 120}, series)
		if !reflect.DeepEqual(*rs.Results[0].Payload, want) {
			t.Fatal("facade EnergyVsPayload deviates from the query result")
		}
	})

	t.Run("simulate", func(t *testing.T) {
		rs := runBoth(t, ts, `{"kind":"simulate","sim":{"nodes":10,"superframes":4,"seed":7}}`)
		r := dense802154.Simulate(dense802154.SimConfig{Nodes: 10, Superframes: 4, Seed: 7})
		if !reflect.DeepEqual(*rs.Results[0].Sim, query.WireSimResult(7, r)) {
			t.Fatal("facade Simulate deviates from the query result")
		}
	})

	t.Run("replicas", func(t *testing.T) {
		rs := runBoth(t, ts, `{"kind":"replicas","sim":{"nodes":10,"superframes":4},"replicas":3}`)
		set, err := dense802154.SimulateReplicas(ctx, dense802154.SimConfig{Nodes: 10, Superframes: 4}, 3, 2)
		if err != nil {
			t.Fatal(err)
		}
		want := query.WireReplicaSummary(set)
		if !reflect.DeepEqual(*rs.Summary, want) {
			t.Fatal("facade SimulateReplicas deviates from the query summary")
		}
		for i, r := range set.Results {
			if !reflect.DeepEqual(*rs.Results[i].Sim, query.WireSimResult(set.Seeds[i], r)) {
				t.Fatalf("facade replica %d deviates from the query result", i)
			}
		}
	})

	t.Run("scenario", func(t *testing.T) {
		rs := runBoth(t, ts, `{"kind":"scenario","scenario":"sparse-idle"}`)
		sc, ok := dense802154.ScenarioByName("sparse-idle")
		if !ok {
			t.Fatal("catalog scenario missing")
		}
		res, err := dense802154.RunScenario(ctx, sc, 2)
		if err != nil {
			t.Fatal(err)
		}
		wantB, err := res.Encode()
		if err != nil {
			t.Fatal(err)
		}
		gotB, err := rs.Results[0].Scenario.Result.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(gotB, wantB) {
			t.Fatal("facade RunScenario deviates from the query result")
		}
	})

	t.Run("experiment", func(t *testing.T) {
		rs := runBoth(t, ts, `{"kind":"experiment","experiment":"fig8","quick":true}`)
		tables, err := dense802154.RunExperiment("fig8", dense802154.ExperimentOpts{Quick: true, Seed: 2005, Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(rs.Results[0].Experiment.Tables, tables) {
			t.Fatal("facade RunExperiment deviates from the query result")
		}
	})
}

// TestRunStreamMatchesRun pins the public streaming contract: RunStream
// yields the exact TaskResults of the assembled set, in plan order.
func TestRunStreamMatchesRun(t *testing.T) {
	q := dense802154.Query{
		Kind:     dense802154.KindReplicas,
		Sim:      &dense802154.QuerySimConfig{Nodes: intp(8), Superframes: intp(3)},
		Replicas: 4,
		Workers:  2,
	}
	var order []int
	rs, err := dense802154.RunStream(context.Background(), q, func(tr dense802154.TaskResult) error {
		order = append(order, tr.Index)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 4 {
		t.Fatalf("streamed %d of 4", len(order))
	}
	for i, idx := range order {
		if idx != i {
			t.Fatalf("stream order %v not plan order", order)
		}
	}
	plain, err := dense802154.Run(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	b1, _ := rs.Encode()
	b2, _ := plain.Encode()
	if !bytes.Equal(b1, b2) {
		t.Fatal("RunStream result deviates from Run")
	}
}

func intp(v int) *int { return &v }
