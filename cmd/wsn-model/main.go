// Command wsn-model queries the paper's analytical model for a single node
// configuration and prints the full metric set, including the per-phase
// energy breakdown and per-state time breakdown.
package main

import (
	"flag"
	"fmt"
	"os"

	"dense802154"
	"dense802154/internal/buildinfo"
	"dense802154/internal/mac"
)

func main() {
	var (
		payload = flag.Int("payload", 120, "data payload bytes")
		load    = flag.Float64("load", 0.433, "network load λ")
		loss    = flag.Float64("loss", 75, "path loss to the coordinator [dB]")
		level   = flag.Int("level", dense802154.AutoTXLevel, "TX level index 0-7, -1 = link adaptation")
		bo      = flag.Uint("bo", 6, "beacon order (SO = BO)")
		nmax    = flag.Int("nmax", 5, "maximum transmissions per packet")
	)
	version := flag.Bool("version", false, "print build version and exit")
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.String("wsn-model"))
		return
	}

	p := dense802154.DefaultParams()
	p.PayloadBytes = *payload
	p.Load = *load
	p.PathLossDB = *loss
	p.TXLevelIndex = *level
	p.NMax = *nmax
	sf, err := mac.NewSuperframe(uint8(*bo), uint8(*bo))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	p.Superframe = sf

	m, err := dense802154.Evaluate(p)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("configuration: %d B payload, λ=%.3f, %g dB path loss, BO=%d\n",
		*payload, *load, *loss, *bo)
	fmt.Printf("link:          TX level %d (%+g dBm), PRx %.1f dBm, BER %.3g\n",
		m.TXLevelIndex, m.TXPowerDBm, m.PRxDBm, m.PrBit)
	fmt.Printf("packet:        Tpacket %v, PrE %.4f, PrTF %.4f, E[tx] %.3f\n",
		m.Tpacket, m.PrE, m.PrTF, m.ExpectedTx)
	fmt.Printf("contention:    Tcont %v, NCCA %.2f, Prcf %.4f, Prcol %.4f\n",
		m.Cont.Tcont, m.Cont.NCCA, m.Cont.PrCF, m.Cont.PrCol)
	fmt.Printf("dwell:         Tidle %v, TTx %v, TRx %v\n", m.Tidle, m.TTx, m.TRx)
	fmt.Printf("result:        Pavg %v | PrFail %.4f | delay %v | %.1f nJ/bit\n",
		m.AvgPower, m.PrFail, m.Delay, m.EnergyPerBitJ*1e9)

	sh := m.Breakdown.Share()
	fmt.Printf("\nenergy by phase: beacon %.1f%% | contention %.1f%% | transmit %.1f%% | ack %.1f%% | ifs %.1f%%\n",
		sh[0]*100, sh[1]*100, sh[2]*100, sh[3]*100, sh[4]*100)
	fr := m.States.Fractions()
	fmt.Printf("time by state:   shutdown %.4f%% | idle %.4f%% | rx %.4f%% | tx %.4f%%\n",
		fr[0]*100, fr[1]*100, fr[2]*100, fr[3]*100)
}
