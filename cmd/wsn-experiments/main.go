// Command wsn-experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	wsn-experiments                  # run everything at paper scale
//	wsn-experiments -run fig6,fig7   # selected experiments
//	wsn-experiments -quick           # reduced Monte-Carlo scale
//	wsn-experiments -csv results/    # also write CSV files
//	wsn-experiments -list            # list available experiments
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"

	"dense802154"
	"dense802154/internal/buildinfo"
)

func main() {
	var (
		run     = flag.String("run", "", "comma-separated experiment names (default: all)")
		quick   = flag.Bool("quick", false, "reduced Monte-Carlo scale")
		seed    = flag.Int64("seed", 2005, "random seed")
		workers = flag.Int("workers", runtime.NumCPU(), "worker goroutines for sweeps and Monte-Carlo shards (results are identical at any count)")
		csvDir  = flag.String("csv", "", "directory to write CSV files into")
		mark    = flag.Bool("markdown", false, "render tables as Markdown")
		list    = flag.Bool("list", false, "list available experiments")
	)
	version := flag.Bool("version", false, "print build version and exit")
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.String("wsn-experiments"))
		return
	}

	all := dense802154.Experiments()
	if *list {
		for _, e := range all {
			fmt.Printf("%-14s %s\n", e.Name, e.Title)
		}
		return
	}

	selected := all
	if *run != "" {
		selected = selected[:0]
		for _, name := range strings.Split(*run, ",") {
			name = strings.TrimSpace(name)
			found := false
			for _, e := range all {
				if e.Name == name {
					selected = append(selected, e)
					found = true
					break
				}
			}
			if !found {
				fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", name)
				os.Exit(2)
			}
		}
	}

	opt := dense802154.ExperimentOpts{Quick: *quick, Seed: *seed, Workers: *workers}
	for _, e := range selected {
		fmt.Printf("=== %s: %s ===\n%s\n\n", e.Name, e.Title, e.Description)
		tables, err := e.Run(opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.Name, err)
			os.Exit(1)
		}
		for i, t := range tables {
			if *mark {
				fmt.Println(t.Markdown())
			} else {
				fmt.Println(t.String())
			}
			if *csvDir != "" {
				if err := os.MkdirAll(*csvDir, 0o755); err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
				path := filepath.Join(*csvDir, fmt.Sprintf("%s_%d.csv", e.Name, i))
				if err := os.WriteFile(path, []byte(t.CSV()), 0o644); err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
			}
		}
	}
}
