// Command wsn-frames builds and dissects IEEE 802.15.4-2003 frames: a
// quick way to inspect the byte-exact encodings behind the model's length
// accounting (the paper's Lo = 13 overhead vs the standard-exact sizes).
package main

import (
	"flag"
	"fmt"
	"os"

	"dense802154/internal/buildinfo"
	"dense802154/internal/frame"
	"dense802154/internal/phy"
)

func main() {
	var (
		kind    = flag.String("type", "data", "frame type: data, ack, beacon, datarequest")
		payload = flag.Int("payload", 120, "data payload bytes")
		seq     = flag.Int("seq", 0, "sequence number")
		pan     = flag.Uint("pan", 0x1234, "PAN identifier")
		src     = flag.Uint("src", 0x0042, "source short address")
		dst     = flag.Uint("dst", 0x0000, "destination short address")
	)
	version := flag.Bool("version", false, "print build version and exit")
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.String("wsn-frames"))
		return
	}

	var f *frame.Frame
	var err error
	switch *kind {
	case "data":
		f = frame.NewData(uint8(*seq),
			frame.ShortAddress(uint16(*pan), uint16(*dst)),
			frame.ShortAddress(uint16(*pan), uint16(*src)),
			make([]byte, *payload), true)
	case "ack":
		f = frame.NewAck(uint8(*seq), false)
	case "beacon":
		f, err = frame.NewBeacon(uint8(*seq), frame.ShortAddress(uint16(*pan), 0), &frame.BeaconPayload{
			Superframe: frame.SuperframeSpec{
				BeaconOrder: 6, SuperframeOrder: 6, FinalCAPSlot: 15,
				PANCoordinator: true, AssocPermit: true,
			},
		})
	case "datarequest":
		f = frame.NewCommand(uint8(*seq),
			frame.ShortAddress(uint16(*pan), uint16(*dst)),
			frame.ShortAddress(uint16(*pan), uint16(*src)),
			frame.CmdDataRequest, nil, true)
	default:
		fmt.Fprintf(os.Stderr, "unknown frame type %q\n", *kind)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	mpdu := f.Encode()
	fmt.Printf("%s frame, seq %d\n", f.Header.Control.Type, f.Header.Seq)
	fmt.Printf("  MPDU:    %d bytes\n", len(mpdu))
	fmt.Printf("  on air:  %d bytes (with %d-byte PHY header) = %v at 250 kb/s\n",
		f.OnAirBytes(), phy.HeaderBytes, f.Duration())
	if f.Header.Control.Type == frame.TypeData {
		fmt.Printf("  paper accounting: Lo=%d overhead -> %d bytes, %v\n",
			frame.PaperOverheadBytes, frame.PaperPacketBytes(*payload),
			frame.PaperPacketDuration(*payload))
	}
	fmt.Printf("  FCS:     0x%02x%02x (valid: %v)\n",
		mpdu[len(mpdu)-1], mpdu[len(mpdu)-2], frame.CheckFCS(mpdu))

	fmt.Println("\nhex dump (MPDU):")
	for i := 0; i < len(mpdu); i += 16 {
		end := i + 16
		if end > len(mpdu) {
			end = len(mpdu)
		}
		fmt.Printf("  %04x  % x\n", i, mpdu[i:end])
	}

	back, err := frame.Decode(mpdu)
	if err != nil {
		fmt.Fprintf(os.Stderr, "decode failed: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("\ndecoded: type=%v ack-req=%v intra-PAN=%v dst=%04x/%04x src=%04x/%04x payload=%dB\n",
		back.Header.Control.Type, back.Header.Control.AckRequest, back.Header.Control.IntraPAN,
		back.Header.Dst.PAN, back.Header.Dst.Short,
		back.Header.Src.PAN, back.Header.Src.Short, len(back.Payload))
}
