// Command wsn-query runs one declarative query against the unified query
// layer — the same versioned Query type POST /v2/query accepts — and
// prints the tagged ResultSet as JSON. It is the command-line third of the
// query surface (in-process dense802154.Run and the HTTP v2 endpoints are
// the other two): the same request document produces bit-identical bytes
// through all three.
//
// Usage:
//
//	wsn-query [-f query.json] [-workers n] [-stream] [-plan]
//
// The query document is read from -f, or from stdin when -f is omitted or
// "-". Examples:
//
//	echo '{"kind":"evaluate","params":{"payload_bytes":60,"load":0.25}}' | wsn-query
//	echo '{"kind":"pathloss-sweep","losses":{"from":55,"to":95,"points":81}}' | wsn-query
//	echo '{"kind":"replicas","sim":{"nodes":50,"superframes":10},"replicas":8}' | wsn-query -stream
//	wsn-query -f casestudy.json -workers 4
//
// -stream emits NDJSON: one TaskResult per line in plan order (batch
// elements and simulation replicas land as they complete), then a final
// {"done":true,...} summary line — the same framing as POST
// /v2/query/stream. -plan validates and prints the compiled execution plan
// without running it. -workers overrides the query's own workers field
// (0 keeps it; results never depend on it). -trace opts into execution
// tracing: the ResultSet (or the stream's done line) carries per-task wall
// times and replica seeds; traces never change computed result bytes.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"

	"dense802154/internal/buildinfo"
	"dense802154/internal/query"
)

func main() {
	var (
		file    = flag.String("f", "-", "query JSON file (\"-\" reads stdin)")
		workers = flag.Int("workers", 0, "worker goroutines, overriding the query's workers field (0 keeps it; results are identical at any count)")
		stream  = flag.Bool("stream", false, "emit NDJSON task results in plan order instead of one ResultSet document")
		plan    = flag.Bool("plan", false, "validate and print the execution plan without running it")
		trace   = flag.Bool("trace", false, "attach per-task execution timing to the result (sets the query's trace field)")
		version = flag.Bool("version", false, "print build version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.String("wsn-query"))
		return
	}
	if err := run(*file, *workers, *stream, *plan, *trace); err != nil {
		fmt.Fprintln(os.Stderr, "wsn-query:", err)
		os.Exit(1)
	}
}

func run(file string, workers int, stream, planOnly, trace bool) error {
	var in io.Reader = os.Stdin
	if file != "" && file != "-" {
		f, err := os.Open(file)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	dec := json.NewDecoder(in)
	dec.DisallowUnknownFields()
	var q query.Query
	if err := dec.Decode(&q); err != nil {
		if errors.Is(err, io.EOF) {
			return errors.New("empty query document")
		}
		return fmt.Errorf("malformed query: %w", err)
	}
	if workers > 0 {
		q.Workers = workers
	}
	if trace {
		q.Trace = true
	}

	p, err := query.Compile(q)
	if err != nil {
		return err
	}
	if planOnly {
		fmt.Printf("%s\n", p)
		for i, label := range p.Labels() {
			fmt.Printf("  task %d: %s\n", i, label)
		}
		return nil
	}

	// SIGINT/SIGTERM cancel the plan between tasks and grid points, so an
	// interrupted paper-scale sweep exits promptly instead of finishing.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	out := os.Stdout
	enc := json.NewEncoder(out)
	enc.SetEscapeHTML(false)

	var yield func(query.TaskResult) error
	if stream {
		yield = func(tr query.TaskResult) error { return enc.Encode(tr) }
	}
	rs, err := p.Execute(ctx, q.Workers, yield)
	if err != nil {
		return err
	}
	if stream {
		return enc.Encode(struct {
			Done    bool                      `json:"done"`
			Count   int                       `json:"count"`
			Summary *query.ReplicaSummaryWire `json:"summary,omitempty"`
			Trace   *query.PlanTraceWire      `json:"trace,omitempty"`
		}{Done: true, Count: len(rs.Results), Summary: rs.Summary, Trace: rs.Trace})
	}
	body, err := rs.Encode()
	if err != nil {
		return err
	}
	_, err = out.Write(body)
	return err
}
