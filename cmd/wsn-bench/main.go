// Command wsn-bench runs the repository's tracked benchmark suite — the
// serial/parallel engine pairs and the hot-path micro-benchmarks of the
// zero-allocation simulation cores — and emits a machine-readable JSON
// report (ns/op, allocs/op, B/op per benchmark).
//
// The committed BENCH_*.json files are the performance trajectory of the
// repository: each perf-focused PR regenerates the report and the next one
// diffs against it, so regressions surface as numbers rather than
// anecdotes.
//
// Usage:
//
//	wsn-bench                          # full suite to stdout
//	wsn-bench -out BENCH_PR6.json      # refresh the tracked baseline
//	wsn-bench -benchtime 100ms -quick  # CI smoke pass
//	wsn-bench -diff BENCH_PR6.json     # compare this run to the baseline
//
// -diff is warn-only for wall-clock by design: it prints per-benchmark
// ratios and flags ns/op slowdowns beyond -warn (default 1.5x), but ns/op
// warnings never change the exit code, so noisy CI hosts cannot block
// merges on hardware-dependent numbers. Allocations are the stable
// cross-machine signal: with -failallocs, an allocs/op increase beyond the
// per-benchmark noise slack exits non-zero (the CI bench-smoke gate).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"testing"
	"time"

	"dense802154"
	"dense802154/internal/battery"
	"dense802154/internal/buildinfo"
	"dense802154/internal/contention"
	"dense802154/internal/core"
	"dense802154/internal/des"
	"dense802154/internal/engine"
	"dense802154/internal/lifetime"
	"dense802154/internal/netsim"
	"dense802154/internal/query"
	"dense802154/internal/store"
)

// benchResult is one benchmark's measurement in the JSON report.
type benchResult struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// report is the wsn-bench/v1 JSON document.
type report struct {
	Schema      string        `json:"schema"`
	GeneratedAt string        `json:"generated_at"`
	GoVersion   string        `json:"go_version"`
	GOOS        string        `json:"goos"`
	GOARCH      string        `json:"goarch"`
	NumCPU      int           `json:"num_cpu"`
	Benchtime   string        `json:"benchtime"`
	Quick       bool          `json:"quick"`
	Benchmarks  []benchResult `json:"benchmarks"`
}

// namedBench pairs a stable report name with the benchmark body.
type namedBench struct {
	name string
	fn   func(b *testing.B)
}

// suite returns the tracked benchmark set. quick shrinks the Monte-Carlo
// workloads so a CI smoke pass stays under a few seconds; quick and full
// runs are not comparable to each other, only to runs of the same mode.
//
// The bodies mirror the like-named benchmarks in bench_test.go (which `go
// test -bench` runs); when changing a workload constant there, update the
// twin here so the tracked BENCH_*.json trajectory keeps measuring the
// same thing.
func suite(quick bool) []namedBench {
	mcSuperframes := 64
	fig6Superframes := 32
	fig6Payloads := []int{10, 20, 50, 100}
	if quick {
		mcSuperframes = 16
		fig6Superframes = 8
		fig6Payloads = []int{20, 100}
	}
	loads := []float64{0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}
	if quick {
		loads = []float64{0.1, 0.4, 0.7}
	}

	caseStudy := func(workers int) func(b *testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			cfg := dense802154.DefaultCaseStudy()
			for i := 0; i < b.N; i++ {
				p := dense802154.DefaultParams()
				p.Workers = workers
				p.Contention = contention.NewMCSource(contention.Config{
					Superframes: mcSuperframes,
					Seed:        int64(1_000_000*(workers+1) + i),
					Workers:     workers,
				})
				if _, err := dense802154.RunCaseStudy(p, cfg); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	fig6 := func(workers int) func(b *testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				base := contention.Config{
					Superframes: fig6Superframes,
					Seed:        int64(2_000_000*(workers+1) + i),
					Workers:     workers,
				}
				for _, L := range fig6Payloads {
					contention.BuildCurve(L, loads, base)
				}
			}
		}
	}

	return []namedBench{
		{"ContentionMC", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				contention.Simulate(contention.Config{
					TargetLoad: 0.433, Superframes: 1, Seed: int64(i),
				})
			}
		}},
		{"ContentionMCShard", func(b *testing.B) {
			// One full 8-superframe shard: the unit of Monte-Carlo
			// parallelism.
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				contention.Simulate(contention.Config{
					TargetLoad: 0.433, Superframes: 8, Seed: int64(i), Workers: 1,
				})
			}
		}},
		{"NetsimSuperframe", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				netsim.Run(netsim.Config{Nodes: 100, Superframes: 1, Seed: int64(i)})
			}
		}},
		{"NetsimDense200", func(b *testing.B) {
			// The 200-node dense operating regime of the Fig. 6-8
			// surfaces: the scenario the indexed medium targets.
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				netsim.Run(netsim.Config{Nodes: 200, Superframes: 4, Seed: int64(i)})
			}
		}},
		{"NetsimReplicas8", func(b *testing.B) {
			// A whole dense replica sweep: every replica after a worker's
			// first reuses that worker's pooled arena, so this is where
			// run-state recycling shows up. Workers is pinned to 2 to keep
			// allocs/op machine-independent.
			b.ReportAllocs()
			cfg := netsim.Config{Nodes: 200, Superframes: 4}
			for i := 0; i < b.N; i++ {
				cfg.Seed = int64(i)
				if _, err := netsim.RunReplicas(context.Background(), cfg, 8, 2); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"DESScheduleFire", func(b *testing.B) {
			// Typed-dispatch schedule→fire churn through the value heap.
			b.ReportAllocs()
			s := des.New(1)
			s.SetDispatcher(func(kind, actor int32, arg time.Duration) {})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.ScheduleEvent(time.Duration(i%64)*time.Microsecond, 0, 0, 0)
				if i%64 == 63 {
					s.Run()
				}
			}
			s.Run()
		}},
		{"DESFastForward", func(b *testing.B) {
			// A pre-sorted sparse timeline — thousands of beacon-grid
			// instants with nothing between them — parked and drained in one
			// go: the idle fast-forward path of a lifetime run.
			b.ReportAllocs()
			s := des.New(1)
			s.SetDispatcher(func(kind, actor int32, arg time.Duration) {})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := 0; j < 4096; j++ {
					s.ScheduleEvent(time.Duration(j)*time.Millisecond, 0, 0, 0)
				}
				s.Run()
			}
		}},
		{"NetsimLifetime", func(b *testing.B) {
			// One full battery-lifetime integration: epoch-sampled DES with
			// steady-state fast-forward until the last node dies.
			b.ReportAllocs()
			cfg := lifetime.Config{
				Sim:              netsim.Config{Nodes: 8, Superframes: 1},
				Supply:           battery.Supply{CapacityJ: 0.5, SelfDischargePerYear: 0.01},
				EpochSuperframes: 4,
			}
			for i := 0; i < b.N; i++ {
				cfg.Sim.Seed = int64(i)
				lifetime.Run(cfg)
			}
		}},
		{"EngineRNG", func(b *testing.B) {
			b.ReportAllocs()
			r := engine.NewRNG(1)
			for i := 0; i < b.N; i++ {
				_ = r.Uint64()
			}
		}},
		{"ModelEvaluate", func(b *testing.B) {
			b.ReportAllocs()
			p := dense802154.DefaultParams()
			p.Contention = contention.Approx{}
			p.TXLevelIndex = 7
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.Evaluate(p); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"CaseStudySerial", caseStudy(1)},
		{"CaseStudyParallel", caseStudy(0)},
		{"Fig6ContentionSerial", fig6(1)},
		{"Fig6ContentionParallel", fig6(0)},
		{"StoreKey", func(b *testing.B) {
			// Content-key derivation: canonical encode + SHA-256, the fixed
			// per-query cost of every store lookup.
			b.ReportAllocs()
			q := storeBenchQuery()
			for i := 0; i < b.N; i++ {
				if _, ok := store.KeyFor(q); !ok {
					b.Fatal("query not keyable")
				}
			}
		}},
		{"StoreTaskHit", func(b *testing.B) {
			// Memory-tier task hit — the path a warm worker rides per task.
			b.ReportAllocs()
			st, err := store.New(store.Config{})
			if err != nil {
				b.Fatal(err)
			}
			key, _ := store.KeyFor(storeBenchQuery())
			st.PutTask(key, 0, make([]byte, 512))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, ok := st.GetTask(key, 0); !ok {
					b.Fatal("miss on warm store")
				}
			}
		}},
		{"StoreResultHit", func(b *testing.B) {
			// Whole-query body hit — the O(1) answer path of /v2/query.
			b.ReportAllocs()
			st, err := store.New(store.Config{})
			if err != nil {
				b.Fatal(err)
			}
			key, _ := store.KeyFor(storeBenchQuery())
			st.PutResult(key, make([]byte, 4096))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, ok := st.GetResult(key); !ok {
					b.Fatal("miss on warm store")
				}
			}
		}},
	}
}

// storeBenchQuery is the standard 6-task grid workload of the store
// benchmarks (the same shape the dist and service tests use).
func storeBenchQuery() query.Query {
	seed := int64(3)
	return query.Query{
		Kind:     query.KindGrid,
		Params:   &query.ParamsWire{Contention: &query.ContentionWire{Superframes: 8, Seed: &seed}},
		Losses:   &query.Axis{Values: []query.Float{55, 70, 85}},
		Payloads: &query.IntAxis{Values: []int{20, 100}},
	}
}

func main() {
	out := flag.String("out", "", "write the JSON report to this file (default stdout)")
	benchtime := flag.Duration("benchtime", time.Second, "target run time per benchmark")
	quick := flag.Bool("quick", false, "shrink Monte-Carlo workloads for a smoke pass")
	runFilter := flag.String("run", "", "regexp selecting benchmarks by name")
	diff := flag.String("diff", "", "baseline JSON report to compare against")
	warn := flag.Float64("warn", 1.5, "ns/op slowdown ratio that triggers a warning with -diff")
	failAllocs := flag.Bool("failallocs", false, "exit non-zero when -diff finds an allocs/op regression (ns/op stays warn-only)")
	testing.Init()
	version := flag.Bool("version", false, "print build version and exit")
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.String("wsn-bench"))
		return
	}
	if err := flag.Set("test.benchtime", benchtime.String()); err != nil {
		fmt.Fprintf(os.Stderr, "wsn-bench: set benchtime: %v\n", err)
		os.Exit(1)
	}

	var filter *regexp.Regexp
	if *runFilter != "" {
		var err error
		if filter, err = regexp.Compile(*runFilter); err != nil {
			fmt.Fprintf(os.Stderr, "wsn-bench: bad -run: %v\n", err)
			os.Exit(1)
		}
	}

	rep := report{
		Schema:      "wsn-bench/v1",
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		NumCPU:      runtime.NumCPU(),
		Benchtime:   benchtime.String(),
		Quick:       *quick,
	}
	for _, nb := range suite(*quick) {
		if filter != nil && !filter.MatchString(nb.name) {
			continue
		}
		dense802154.ContentionCacheReset() // fresh cache per benchmark
		r := testing.Benchmark(nb.fn)
		res := benchResult{
			Name:        nb.name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		rep.Benchmarks = append(rep.Benchmarks, res)
		fmt.Fprintf(os.Stderr, "%-24s %12d it %14.0f ns/op %10d B/op %8d allocs/op\n",
			nb.name, res.Iterations, res.NsPerOp, res.BytesPerOp, res.AllocsPerOp)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "wsn-bench: marshal: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
	} else if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "wsn-bench: write %s: %v\n", *out, err)
		os.Exit(1)
	}

	if *diff != "" {
		allocRegressions := compare(*diff, rep, *warn)
		if *failAllocs && allocRegressions > 0 {
			fmt.Fprintf(os.Stderr, "wsn-bench: failing: %d allocs/op regression(s) vs %s\n", allocRegressions, *diff)
			os.Exit(1)
		}
	}
}

// compare prints this run against a baseline report and returns the number
// of allocs/op regressions beyond the per-benchmark noise slack. ns/op
// warnings never affect the return value: wall-clock numbers are
// machine-dependent, so they inform reviewers rather than gate them;
// allocs/op increases are the strong signal (they are
// hardware-independent), and the caller may turn them into a failing exit.
func compare(path string, cur report, warnRatio float64) int {
	raw, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "wsn-bench: read baseline: %v\n", err)
		return 0
	}
	var base report
	if err := json.Unmarshal(raw, &base); err != nil {
		fmt.Fprintf(os.Stderr, "wsn-bench: parse baseline: %v\n", err)
		return 0
	}
	if base.Quick != cur.Quick {
		fmt.Fprintf(os.Stderr, "wsn-bench: note: baseline quick=%v vs run quick=%v — ns/op ratios reflect workload size, not regressions\n",
			base.Quick, cur.Quick)
	}
	byName := make(map[string]benchResult, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		byName[b.Name] = b
	}
	fmt.Fprintf(os.Stderr, "\n%-24s %14s %14s %8s %18s\n", "benchmark", "base ns/op", "now ns/op", "ratio", "allocs base→now")
	warned, allocRegressions := 0, 0
	for _, c := range cur.Benchmarks {
		b, ok := byName[c.Name]
		if !ok {
			fmt.Fprintf(os.Stderr, "%-24s %14s %14.0f %8s %18s (new)\n", c.Name, "-", c.NsPerOp, "-", fmt.Sprintf("-→%d", c.AllocsPerOp))
			continue
		}
		ratio := c.NsPerOp / b.NsPerOp
		mark := ""
		if base.Quick == cur.Quick && ratio > warnRatio {
			mark = "  WARN: slower"
			warned++
		}
		// Parallel benchmarks jitter by a couple of allocations with
		// goroutine scheduling; flag only beyond that noise floor.
		allocSlack := b.AllocsPerOp / 10
		if allocSlack < 2 {
			allocSlack = 2
		}
		if c.AllocsPerOp > b.AllocsPerOp+allocSlack {
			mark += "  REGRESSION: more allocs"
			warned++
			allocRegressions++
		}
		fmt.Fprintf(os.Stderr, "%-24s %14.0f %14.0f %7.2fx %18s%s\n",
			c.Name, b.NsPerOp, c.NsPerOp, ratio, fmt.Sprintf("%d→%d", b.AllocsPerOp, c.AllocsPerOp), mark)
	}
	if warned > 0 {
		fmt.Fprintf(os.Stderr, "\nwsn-bench: %d finding(s) vs %s (%d allocs/op regression(s))\n", warned, path, allocRegressions)
	} else {
		fmt.Fprintf(os.Stderr, "\nwsn-bench: no regressions vs %s\n", path)
	}
	return allocRegressions
}
