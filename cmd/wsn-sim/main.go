// Command wsn-sim runs the cycle-accurate discrete-event simulation of the
// beacon-enabled star network and prints energy/delivery statistics.
//
// With -replicas N it runs N independent replications (seeds derived from
// -seed) concurrently on -workers goroutines and reports per-replica
// headlines plus the across-replica means — the Monte-Carlo confidence
// companion to the single detailed run.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"

	"dense802154"
	"dense802154/internal/buildinfo"
	"dense802154/internal/channel"
	"dense802154/internal/mac"
	"dense802154/internal/radio"
)

func main() {
	var (
		nodes       = flag.Int("nodes", 100, "nodes on the channel")
		payload     = flag.Int("payload", 120, "data payload bytes")
		bo          = flag.Uint("bo", 6, "beacon order (SO = BO)")
		superframes = flag.Int("superframes", 40, "superframes to simulate")
		seed        = flag.Int64("seed", 1, "random seed")
		replicas    = flag.Int("replicas", 1, "independent replications (seeds derived from -seed)")
		workers     = flag.Int("workers", runtime.NumCPU(), "worker goroutines running replicas (results are identical at any count)")
		minLoss     = flag.Float64("minloss", 55, "minimum path loss [dB]")
		maxLoss     = flag.Float64("maxloss", 95, "maximum path loss [dB]")
		txProb      = flag.Float64("p", 1, "per-superframe transmit probability")
		fast        = flag.Bool("fast-transitions", false, "halve radio transition times (§5 improvement)")
	)
	version := flag.Bool("version", false, "print build version and exit")
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.String("wsn-sim"))
		return
	}

	sf, err := mac.NewSuperframe(uint8(*bo), uint8(*bo))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	r := radio.CC2420()
	if *fast {
		r = r.WithTransitionScale(0.5)
	}
	if *replicas < 1 {
		*replicas = 1
	}
	cfgFor := func(seed int64) dense802154.SimConfig {
		return dense802154.SimConfig{
			Nodes:        *nodes,
			PayloadBytes: *payload,
			Superframe:   sf,
			Radio:        r,
			Deployment:   channel.UniformLoss{MinDB: *minLoss, MaxDB: *maxLoss},
			TransmitProb: *txProb,
			Superframes:  *superframes,
			Seed:         seed,
		}
	}
	rs, err := dense802154.SimulateReplicas(context.Background(), cfgFor(*seed), *replicas, *workers)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	res := rs.Results[0]
	fmt.Println(res)
	fmt.Printf("\npackets: offered=%d delivered=%d dropped=%d expired=%d\n",
		res.PacketsOffered, res.PacketsDelivered, res.PacketsDropped, res.PacketsExpired)
	fmt.Printf("medium:  transmissions=%d collisions=%d access-failures=%d corrupted=%d\n",
		res.Transmissions, res.Collisions, res.AccessFailures, res.CorruptedFrames)
	fmt.Printf("contention: Tcont=%v NCCA=%.2f Prcf=%.3f Prcol=%.3f\n",
		res.Contention.Tcont, res.Contention.NCCA, res.Contention.PrCF, res.Contention.PrCol)
	fmt.Printf("delay: mean=%v p95=%v\n", res.MeanDelay, res.P95Delay)

	l := res.Ledger
	tot := float64(l.TotalEnergy())
	fmt.Printf("\nenergy by phase:\n")
	for ph := 0; ph < radio.NumPhases; ph++ {
		if l.ByPhase[ph] == 0 {
			continue
		}
		fmt.Printf("  %-11s %6.2f%%  (%v)\n", radio.Phase(ph).String(),
			100*float64(l.ByPhase[ph])/tot, l.ByPhase[ph])
	}
	fmt.Printf("time by state:\n")
	totT := float64(l.TotalTime())
	for s := 0; s < radio.NumStates; s++ {
		fmt.Printf("  %-11s %7.4f%%\n", radio.State(s).String(),
			100*float64(l.TimeIn[s])/totT)
	}

	if *replicas > 1 {
		fmt.Printf("\nreplicas (%d, %d workers):\n", *replicas, *workers)
		for i, rr := range rs.Results {
			fmt.Printf("  #%-2d seed=%-20d power=%v delivery=%.3f Prcf=%.3f\n",
				i, rs.Seeds[i], rr.AvgPowerPerNode, rr.DeliveryRatio, rr.Contention.PrCF)
		}
		fmt.Printf("mean: power=%.1f µW (±%.1f) delivery=%.3f (±%.3f) Prcf=%.3f (±%.3f)\n",
			rs.AvgPowerUW.Mean, rs.AvgPowerUW.CI95,
			rs.DeliveryRatio.Mean, rs.DeliveryRatio.CI95,
			rs.PrCF.Mean, rs.PrCF.CI95)
	}
}
