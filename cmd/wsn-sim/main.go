// Command wsn-sim runs the cycle-accurate discrete-event simulation of the
// beacon-enabled star network and prints energy/delivery statistics.
package main

import (
	"flag"
	"fmt"
	"os"

	"dense802154"
	"dense802154/internal/channel"
	"dense802154/internal/mac"
	"dense802154/internal/radio"
)

func main() {
	var (
		nodes       = flag.Int("nodes", 100, "nodes on the channel")
		payload     = flag.Int("payload", 120, "data payload bytes")
		bo          = flag.Uint("bo", 6, "beacon order (SO = BO)")
		superframes = flag.Int("superframes", 40, "superframes to simulate")
		seed        = flag.Int64("seed", 1, "random seed")
		minLoss     = flag.Float64("minloss", 55, "minimum path loss [dB]")
		maxLoss     = flag.Float64("maxloss", 95, "maximum path loss [dB]")
		txProb      = flag.Float64("p", 1, "per-superframe transmit probability")
		fast        = flag.Bool("fast-transitions", false, "halve radio transition times (§5 improvement)")
	)
	flag.Parse()

	sf, err := mac.NewSuperframe(uint8(*bo), uint8(*bo))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	r := radio.CC2420()
	if *fast {
		r = r.WithTransitionScale(0.5)
	}
	res := dense802154.Simulate(dense802154.SimConfig{
		Nodes:        *nodes,
		PayloadBytes: *payload,
		Superframe:   sf,
		Radio:        r,
		Deployment:   channel.UniformLoss{MinDB: *minLoss, MaxDB: *maxLoss},
		TransmitProb: *txProb,
		Superframes:  *superframes,
		Seed:         *seed,
	})

	fmt.Println(res)
	fmt.Printf("\npackets: offered=%d delivered=%d dropped=%d expired=%d\n",
		res.PacketsOffered, res.PacketsDelivered, res.PacketsDropped, res.PacketsExpired)
	fmt.Printf("medium:  transmissions=%d collisions=%d access-failures=%d corrupted=%d\n",
		res.Transmissions, res.Collisions, res.AccessFailures, res.CorruptedFrames)
	fmt.Printf("contention: Tcont=%v NCCA=%.2f Prcf=%.3f Prcol=%.3f\n",
		res.Contention.Tcont, res.Contention.NCCA, res.Contention.PrCF, res.Contention.PrCol)
	fmt.Printf("delay: mean=%v p95=%v\n", res.MeanDelay, res.P95Delay)

	l := res.Ledger
	tot := float64(l.TotalEnergy())
	fmt.Printf("\nenergy by phase:\n")
	for ph := 0; ph < radio.NumPhases; ph++ {
		if l.ByPhase[ph] == 0 {
			continue
		}
		fmt.Printf("  %-11s %6.2f%%  (%v)\n", radio.Phase(ph).String(),
			100*float64(l.ByPhase[ph])/tot, l.ByPhase[ph])
	}
	fmt.Printf("time by state:\n")
	totT := float64(l.TotalTime())
	for s := 0; s < radio.NumStates; s++ {
		fmt.Printf("  %-11s %7.4f%%\n", radio.State(s).String(),
			100*float64(l.TimeIn[s])/totT)
	}
}
