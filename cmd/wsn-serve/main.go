// Command wsn-serve runs the HTTP batch-evaluation service: the whole model
// surface of the repository — analytical evaluations, batches, the §5 case
// study, the Fig. 7/8 sweeps, the discrete-event simulator with parallel
// replications and the registered experiment drivers — behind a JSON API
// with a server-wide worker pool and a bounded contention cache. The
// unified POST /v2/query and /v2/query/stream endpoints accept one
// declarative Query document per computation (the same type cmd/wsn-query
// drives locally); the per-endpoint v1 routes are maintained but frozen.
//
// Usage:
//
//	wsn-serve -addr :8080 -workers 8 -cache-size 4096 -timeout 2m
//
// The server drains in-flight requests on SIGINT/SIGTERM before exiting.
// See the package documentation of internal/service for the endpoint list
// and doc.go for example invocations.
//
// Observability: GET /metrics serves the Prometheus text format (see the
// internal/service package doc for the family list). Request logging is
// structured; -log-format selects text (default) or json records and
// -log-level the threshold (debug, info, warn, error). -quiet disables
// request logging entirely.
//
// Profiling: -pprof 127.0.0.1:6060 exposes the standard net/http/pprof
// endpoints (/debug/pprof/profile, /heap, /allocs, …) on a separate
// listener, so production profiles of the simulation cores can be captured
// without widening the public API surface:
//
//	wsn-serve -addr :8080 -pprof 127.0.0.1:6060
//	go tool pprof http://127.0.0.1:6060/debug/pprof/profile?seconds=30
//
// Distributed execution: -peers turns the server into a coordinator that
// shards /v2/query plans across a fleet of plain wsn-serve workers and
// merges the results byte-identically to local execution, surviving worker
// timeouts, errors and crashes by re-dispatching (see internal/dist):
//
//	wsn-serve -addr :8081 &                       # worker
//	wsn-serve -addr :8082 &                       # worker
//	wsn-serve -addr :8080 \
//	  -peers http://127.0.0.1:8081,http://127.0.0.1:8082
//
// -shard-size, -shard-timeout and -dist-attempts tune the sharding and
// retry policy; -request-timeout bounds each v2 query end to end (answered
// with a structured 504 when exceeded). Workers need no flags: any
// wsn-serve serves /v2/tasks. During drain the server flips /readyz to 503
// first, so coordinators evict it before the listener closes.
//
// Result store: every server keeps a content-addressed result store
// (internal/store) keyed by the SHA-256 of the query's canonical form.
// Identical queries are answered from the store in O(1), interrupted
// streams resume from persisted per-task results, and in coordinator mode
// stored shards are adopted instead of dispatched. -store-mem bounds the
// in-memory tier in bytes (default 256 MiB; 0 disables the store entirely,
// including the disk tier); -store-dir adds a persistent on-disk tier that
// survives restarts:
//
//	wsn-serve -addr :8080 -store-mem 134217728 -store-dir /var/lib/wsn/store
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"dense802154/internal/buildinfo"
	"dense802154/internal/dist"
	"dense802154/internal/service"
	"dense802154/internal/store"
)

// pprofHandler builds the debug mux by hand (instead of blank-importing
// net/http/pprof) so the profiling endpoints never leak onto the service's
// own handler.
func pprofHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		workers   = flag.Int("workers", runtime.NumCPU(), "server-wide worker-token budget shared by all requests")
		cacheSize = flag.Int("cache-size", 4096, "max entries of the shared contention cache, LRU-evicted (0 = unbounded)")
		timeout   = flag.Duration("timeout", 2*time.Minute, "per-request computation deadline (0 = none)")
		maxBody   = flag.Int64("max-body", 8<<20, "request body cap in bytes")
		quiet     = flag.Bool("quiet", false, "disable per-request logging")
		drain     = flag.Duration("drain", 10*time.Second, "graceful-shutdown drain window")
		pprofAddr = flag.String("pprof", "", "expose net/http/pprof on this address (e.g. 127.0.0.1:6060; empty = disabled)")
		logFormat = flag.String("log-format", "text", "request log format: text or json")
		logLevel  = flag.String("log-level", "info", "request log threshold: debug, info, warn or error")
		version   = flag.Bool("version", false, "print build version and exit")

		peers        = flag.String("peers", "", "comma-separated worker base URLs; non-empty enables coordinator mode for /v2/query")
		shardSize    = flag.Int("shard-size", 0, "tasks per dispatched shard (0 = about two shards per worker)")
		shardTimeout = flag.Duration("shard-timeout", 0, "per-shard deadline before re-dispatch (0 = 60s)")
		distAttempts = flag.Int("dist-attempts", 0, "dispatch attempts per index range before local fallback (0 = 4)")
		reqTimeout   = flag.Duration("request-timeout", 0, "per-query deadline of the v2 routes, answered 504 (0 = none)")
		faultExit    = flag.Int("fault-exit-after-tasks", 0, "TESTING: exit(3) after serving this many /v2/tasks lines")

		storeMem = flag.Int64("store-mem", store.DefaultMaxBytes, "in-memory result-store budget in bytes (0 = store disabled, even with -store-dir)")
		storeDir = flag.String("store-dir", "", "directory of the on-disk result-store tier (empty = memory only)")
	)
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.String("wsn-serve"))
		return
	}

	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		fmt.Fprintf(os.Stderr, "wsn-serve: bad -log-level %q: %v\n", *logLevel, err)
		os.Exit(2)
	}
	opts := &slog.HandlerOptions{Level: level}
	var handler slog.Handler
	switch *logFormat {
	case "text":
		handler = slog.NewTextHandler(os.Stderr, opts)
	case "json":
		handler = slog.NewJSONHandler(os.Stderr, opts)
	default:
		fmt.Fprintf(os.Stderr, "wsn-serve: bad -log-format %q (want text or json)\n", *logFormat)
		os.Exit(2)
	}

	logger := log.New(os.Stderr, "wsn-serve: ", log.LstdFlags)
	cfg := service.Config{
		Workers:             *workers,
		CacheLimit:          *cacheSize,
		RequestTimeout:      *timeout,
		MaxBodyBytes:        *maxBody,
		QueryTimeout:        *reqTimeout,
		FaultExitAfterTasks: *faultExit,
	}
	if !*quiet {
		cfg.Logger = slog.New(handler)
	}
	var st *store.Store
	if *storeMem > 0 {
		var err error
		st, err = store.New(store.Config{MaxBytes: *storeMem, Dir: *storeDir})
		if err != nil {
			fmt.Fprintf(os.Stderr, "wsn-serve: -store-dir %q: %v\n", *storeDir, err)
			os.Exit(2)
		}
		cfg.Store = st
		if *storeDir != "" {
			logger.Printf("result store: %d MiB memory over %s", *storeMem>>20, *storeDir)
		}
	}
	if *peers != "" {
		var fleet []string
		for _, p := range strings.Split(*peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				fleet = append(fleet, strings.TrimRight(p, "/"))
			}
		}
		dopts := dist.Options{
			Workers:      fleet,
			ShardSize:    *shardSize,
			ShardTimeout: *shardTimeout,
			MaxAttempts:  *distAttempts,
			Logger:       slog.New(handler),
		}
		if st != nil {
			// The coordinator shares the server's store: prefilled shards
			// are never dispatched, merged results seed the next query.
			dopts.Store = st
		}
		cfg.Distributor = dist.New(dopts)
		logger.Printf("coordinator mode: %d workers %v", len(fleet), fleet)
	}

	app := service.NewServer(cfg)
	srv := &http.Server{
		Addr:              *addr,
		Handler:           app,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var pprofSrv *http.Server
	if *pprofAddr != "" {
		pprofSrv = &http.Server{
			Addr:              *pprofAddr,
			Handler:           pprofHandler(),
			ReadHeaderTimeout: 10 * time.Second,
		}
		go func() {
			if err := pprofSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Printf("pprof listener: %v", err)
			}
		}()
		logger.Printf("pprof on http://%s/debug/pprof/", *pprofAddr)
	}

	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	logger.Printf("listening on %s (workers=%d cache=%d timeout=%v)",
		*addr, *workers, *cacheSize, *timeout)

	select {
	case err := <-errCh:
		logger.Fatal(err)
	case <-ctx.Done():
	}

	logger.Printf("shutting down (drain %v)", *drain)
	app.SetReady(false) // flip /readyz first so coordinators evict us
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if pprofSrv != nil {
		_ = pprofSrv.Close()
	}
	if err := srv.Shutdown(shutdownCtx); err != nil {
		logger.Printf("forced shutdown: %v", err)
		_ = srv.Close()
		os.Exit(1)
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	logger.Println("bye")
}
