// Command wsn-scenarios drives the committed cross-model scenario catalog:
// every named scenario runs through both the analytical model and the
// discrete-event simulator, and the committed golden files pin the outcome
// byte for byte.
//
//	wsn-scenarios list                 # the catalog, one line per scenario
//	wsn-scenarios run  [name ...]      # run scenarios, report agreement
//	wsn-scenarios diff [name ...]      # run and compare against the goldens
//
// Flags: -workers bounds parallelism (results are identical at any count),
// -json switches every subcommand to machine-readable output. diff exits
// non-zero when a scenario drifts beyond its declared tolerances — the CI
// regression gate.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"syscall"

	"dense802154/internal/buildinfo"
	"dense802154/internal/scenario"
)

func main() {
	workers := flag.Int("workers", runtime.NumCPU(), "worker goroutines (results are identical at any count)")
	jsonOut := flag.Bool("json", false, "emit JSON instead of text")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: wsn-scenarios [flags] <list|run|diff> [scenario ...]\n\nFlags:\n")
		flag.PrintDefaults()
	}
	version := flag.Bool("version", false, "print build version and exit")
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.String("wsn-scenarios"))
		return
	}
	if flag.NArg() < 1 {
		flag.Usage()
		os.Exit(2)
	}
	cmd := flag.Arg(0)
	// Accept flags on either side of the subcommand (flag.Parse stops at
	// the first non-flag argument, so "run -json foo" needs a second pass).
	if err := flag.CommandLine.Parse(flag.Args()[1:]); err != nil {
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var err error
	switch cmd {
	case "list":
		err = list(*jsonOut)
	case "run":
		err = run(ctx, flag.Args(), *workers, *jsonOut)
	case "diff":
		err = diff(ctx, flag.Args(), *workers, *jsonOut)
	default:
		fmt.Fprintf(os.Stderr, "wsn-scenarios: unknown command %q\n", cmd)
		flag.Usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "wsn-scenarios:", err)
		os.Exit(1)
	}
}

// select resolves the requested scenario names (all when empty).
func selectScenarios(names []string) ([]scenario.Scenario, error) {
	if len(names) == 0 {
		return scenario.Catalog(), nil
	}
	out := make([]scenario.Scenario, 0, len(names))
	for _, name := range names {
		sc, ok := scenario.ByName(name)
		if !ok {
			return nil, fmt.Errorf("unknown scenario %q (wsn-scenarios list shows the catalog)", name)
		}
		out = append(out, sc)
	}
	return out, nil
}

func list(jsonOut bool) error {
	cat := scenario.Catalog()
	if jsonOut {
		return emitJSON(cat)
	}
	fmt.Printf("%-24s %5s %7s %5s %5s %6s %8s  %s\n",
		"NAME", "NODES", "PAYLOAD", "BO/SO", "P(TX)", "LOAD", "REPLICAS", "LOSS [dB]")
	for _, sc := range cat {
		load, _ := sc.Load()
		fmt.Printf("%-24s %5d %6dB %2d/%-2d %5.2f %6.3f %8d  %g-%g\n",
			sc.Name, sc.Nodes, sc.PayloadBytes, sc.BO, sc.SO, sc.TransmitProb,
			load, sc.Replicas, sc.MinLossDB, sc.MaxLossDB)
	}
	return nil
}

func run(ctx context.Context, names []string, workers int, jsonOut bool) error {
	scs, err := selectScenarios(names)
	if err != nil {
		return err
	}
	var results []*scenario.Result
	failed := 0
	for _, sc := range scs {
		res, err := scenario.Run(ctx, sc, workers)
		if err != nil {
			return fmt.Errorf("%s: %w", sc.Name, err)
		}
		results = append(results, res)
		if !jsonOut {
			printRun(res)
		}
		if !res.Pass {
			failed++
		}
	}
	if jsonOut {
		if err := emitJSON(results); err != nil {
			return err
		}
	}
	if failed > 0 {
		return fmt.Errorf("%d of %d scenarios failed analytic-vs-sim agreement", failed, len(results))
	}
	if !jsonOut {
		fmt.Printf("\nall %d scenarios agree analytic-vs-sim within tolerance\n", len(results))
	}
	return nil
}

func printRun(res *scenario.Result) {
	verdict := "PASS"
	if !res.Pass {
		verdict = "FAIL"
	}
	fmt.Printf("%-24s %s  (λ=%.3f, power %0.1f µW model vs %0.1f±%0.1f µW sim)\n",
		res.Scenario.Name, verdict, float64(res.Analytic.Load),
		float64(res.Analytic.MeanPowerUW),
		float64(res.Sim.PowerUW.Mean), float64(res.Sim.PowerUW.CI95))
	for _, c := range res.Comparisons {
		if !c.Pass {
			fmt.Printf("  ✗ %-10s analytic %.4g vs sim %.4g (±%.2g): |Δ| %.4g > allowed %.4g\n",
				c.Metric, float64(c.Analytic), float64(c.Sim), float64(c.SimCI95),
				float64(c.AbsDiff), float64(c.Allowed))
		}
	}
}

func diff(ctx context.Context, names []string, workers int, jsonOut bool) error {
	scs, err := selectScenarios(names)
	if err != nil {
		return err
	}
	var reports []scenario.DiffReport
	failed := 0
	for _, sc := range scs {
		fresh, err := scenario.Run(ctx, sc, workers)
		if err != nil {
			return fmt.Errorf("%s: %w", sc.Name, err)
		}
		rep, err := scenario.Diff(fresh)
		if err != nil {
			return err
		}
		reports = append(reports, rep)
		if !rep.Pass {
			failed++
		}
		if jsonOut {
			continue
		}
		switch {
		case rep.ByteIdentical:
			fmt.Printf("%-24s OK (byte-identical to golden)\n", rep.Scenario)
		case rep.Pass:
			fmt.Printf("%-24s DRIFT within tolerance (golden bytes differ — regenerate with -update if intended)\n", rep.Scenario)
			printDriftEntries(rep, true)
		default:
			fmt.Printf("%-24s REGRESSION beyond tolerance\n", rep.Scenario)
			printDriftEntries(rep, false)
		}
	}
	if jsonOut {
		if err := emitJSON(reports); err != nil {
			return err
		}
	}
	if failed > 0 {
		return fmt.Errorf("%d of %d scenarios regressed against their goldens", failed, len(reports))
	}
	if !jsonOut {
		fmt.Printf("\nall %d scenarios match their committed goldens\n", len(reports))
	}
	return nil
}

func printDriftEntries(rep scenario.DiffReport, onlyFailing bool) {
	for _, e := range rep.Entries {
		if onlyFailing && e.Pass {
			continue
		}
		mark := "✓"
		if !e.Pass {
			mark = "✗"
		}
		fmt.Printf("  %s %-18s golden %.6g → fresh %.6g (|Δ| %.3g, allowed %.3g)\n",
			mark, e.Metric, float64(e.Golden), float64(e.Fresh),
			float64(e.AbsDiff), float64(e.Allowed))
	}
	if !rep.FreshAgrees {
		fmt.Println("  ✗ fresh run fails its own analytic-vs-sim agreement")
	}
}

func emitJSON(v any) error {
	enc := json.NewEncoder(os.Stdout)
	enc.SetEscapeHTML(false)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}
