// Command wsn-ber runs the chip-level Monte-Carlo bit-error test bench —
// the synthetic equivalent of the paper's wired-attenuator measurement of
// Fig. 4 — and re-derives the exponential regression of eq. (1).
package main

import (
	"flag"
	"fmt"
	"os"

	"dense802154/internal/buildinfo"
	"dense802154/internal/fit"
	"dense802154/internal/phy"
)

func main() {
	var (
		from = flag.Float64("from", -96, "sweep start [dBm]")
		to   = flag.Float64("to", -85, "sweep end [dBm]")
		step = flag.Float64("step", 0.5, "sweep step [dB]")
		errs = flag.Int("errors", 300, "target bit errors per point")
		bits = flag.Int("bits", 4_000_000, "bit budget per point")
		nf   = flag.Float64("nf", phy.DefaultNoiseFigureDB, "effective noise figure [dB]")
		seed = flag.Int64("seed", 1, "random seed")
	)
	version := flag.Bool("version", false, "print build version and exit")
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.String("wsn-ber"))
		return
	}

	bench := phy.NewBench(*seed)
	bench.NoiseFigureDB = *nf
	fmt.Printf("synthetic CC2420 BER bench (O-QPSK DSSS, hard-decision despreading, NF=%.1f dB)\n\n", *nf)
	fmt.Printf("%10s %14s %14s %12s\n", "PRx [dBm]", "measured BER", "eq.(1) BER", "bits")

	points := bench.Sweep(*from, *to, *step, *errs, *bits)
	var xs, ys []float64
	for _, p := range points {
		fmt.Printf("%10.1f %14.3e %14.3e %12d\n", p.PRxDBm, p.BER, phy.Eq1.BitErrorRate(p.PRxDBm), p.Bits)
		if p.BER > 0 {
			xs = append(xs, p.PRxDBm)
			ys = append(ys, p.BER)
		}
	}
	if len(xs) < 3 {
		fmt.Fprintln(os.Stderr, "too few error events for a regression; lower -from or raise -bits")
		os.Exit(1)
	}
	e, err := fit.FitExponential(xs, ys)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("\nexponential regression: BER = %.3g · exp(%.3f · PRx)   (R² in log space: %.3f)\n", e.A, e.B, e.R2)
	fmt.Printf("paper's eq. (1):        BER = %.3g · exp(%.3f · PRx)\n", phy.Eq1.A, phy.Eq1.B)
	fmt.Printf("sensitivity (1%% PER, 20 B): bench-fit %.1f dBm | eq.(1) %.1f dBm | datasheet ≈ -95 dBm\n",
		phy.Sensitivity(phy.ExponentialBER{A: e.A, B: e.B}), phy.Sensitivity(phy.Eq1))
}
