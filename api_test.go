package dense802154_test

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"

	"dense802154"
)

func TestFacadeEvaluate(t *testing.T) {
	p := dense802154.DefaultParams()
	m, err := dense802154.Evaluate(p)
	if err != nil {
		t.Fatal(err)
	}
	if m.AvgPower <= 0 {
		t.Fatal("no power")
	}
	uw := m.AvgPower.MicroWatts()
	if uw < 100 || uw > 400 {
		t.Fatalf("mid-loss node power = %v µW, implausible", uw)
	}
}

func TestFacadeEvaluateBatch(t *testing.T) {
	var ps []dense802154.Params
	for _, loss := range []float64{60, 75, 90} {
		p := dense802154.DefaultParams()
		p.PathLossDB = loss
		ps = append(ps, p)
	}
	got, err := dense802154.EvaluateBatch(context.Background(), ps)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ps) {
		t.Fatalf("batch returned %d metrics for %d params", len(got), len(ps))
	}
	for i, p := range ps {
		want, err := dense802154.Evaluate(p)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got[i], want) {
			t.Fatalf("batch[%d] differs from serial Evaluate", i)
		}
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := dense802154.EvaluateBatch(ctx, ps); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled batch: err = %v", err)
	}
	dense802154.ContentionCacheReset()
}

func TestFacadeLinkAdaptation(t *testing.T) {
	p := dense802154.DefaultParams()
	p.PathLossDB = 50
	lvl, err := dense802154.OptimalTXLevel(p)
	if err != nil {
		t.Fatal(err)
	}
	if lvl != 0 {
		t.Fatalf("level at 50 dB = %d, want 0", lvl)
	}
	losses := []float64{40, 50, 60, 70, 80, 90}
	ths, err := dense802154.Thresholds(p, losses)
	if err != nil {
		t.Fatal(err)
	}
	if len(ths) == 0 {
		t.Fatal("no thresholds")
	}
	curves, err := dense802154.EnergyVsPathLoss(p, losses)
	if err != nil {
		t.Fatal(err)
	}
	if len(curves) != 8 {
		t.Fatal("8 TX levels expected")
	}
	s, err := dense802154.AdaptationSavings(p, 55)
	if err != nil || s <= 0 {
		t.Fatalf("savings = %v, %v", s, err)
	}
}

func TestFacadePacketSizing(t *testing.T) {
	p := dense802154.DefaultParams()
	series, err := dense802154.EnergyVsPayload(p, []int{20, 60, 120})
	if err != nil {
		t.Fatal(err)
	}
	if series.Len() != 3 {
		t.Fatal("series length")
	}
	L, e, err := dense802154.OptimalPayload(p, 20)
	if err != nil {
		t.Fatal(err)
	}
	if L != 123 || e <= 0 {
		t.Fatalf("optimal payload %d (energy %v)", L, e)
	}
}

func TestFacadeCaseStudy(t *testing.T) {
	cfg := dense802154.DefaultCaseStudy()
	cfg.LossGridPoints = 9
	res, err := dense802154.RunCaseStudy(dense802154.DefaultParams(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.AvgPower.MicroWatts() < 150 || res.AvgPower.MicroWatts() > 300 {
		t.Fatalf("case study power %v", res.AvgPower)
	}
	imp, err := dense802154.EvaluateImprovements(dense802154.DefaultParams(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(imp.Rows) != 3 {
		t.Fatal("improvement rows")
	}
}

func TestFacadeRadio(t *testing.T) {
	r := dense802154.CC2420()
	if len(r.TXLevels) != 8 {
		t.Fatal("TX levels")
	}
	if dense802154.Eq1BER.BitErrorRate(-90) <= 0 {
		t.Fatal("eq1")
	}
}

func TestFacadeSimulations(t *testing.T) {
	cr := dense802154.SimulateContention(dense802154.ContentionConfig{
		TargetLoad: 0.3, Superframes: 10, Seed: 1,
	})
	if cr.Transactions == 0 {
		t.Fatal("no contention transactions")
	}
	sr := dense802154.Simulate(dense802154.SimConfig{
		Nodes: 10, Superframes: 5, Seed: 2,
	})
	if sr.PacketsDelivered == 0 {
		t.Fatal("no simulated deliveries")
	}
	if sr.MeanDelay <= 0 || sr.MeanDelay > time.Minute {
		t.Fatalf("delay %v", sr.MeanDelay)
	}
}

func TestFacadeExperiments(t *testing.T) {
	all := dense802154.Experiments()
	if len(all) < 10 {
		t.Fatalf("only %d experiments registered", len(all))
	}
	tables, err := dense802154.RunExperiment("fig3", dense802154.ExperimentOpts{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) == 0 || !strings.Contains(tables[0].String(), "CC2420") {
		t.Fatal("fig3 output")
	}
	if _, err := dense802154.RunExperiment("nope", dense802154.ExperimentOpts{}); err == nil {
		t.Fatal("unknown experiment accepted")
	} else if !strings.Contains(err.Error(), "nope") {
		t.Fatalf("error message %q", err)
	}
}
