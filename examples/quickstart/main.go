// Quickstart: evaluate the average power of a single 802.15.4 sensor node
// with the paper's analytical model, through the unified query API — one
// declarative Query in, one tagged ResultSet out.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"

	"dense802154"
)

func main() {
	// A Query names an operating point and what to compute over it. Empty
	// params mean the paper's case-study node: CC2420 radio, 120-byte
	// packets, beacon order 6, 43% channel load, 75 dB path loss,
	// link-adapted transmit power. The same JSON-shaped document works
	// in-process (here), over HTTP (POST /v2/query) and on the command
	// line (wsn-query).
	rs, err := dense802154.Run(context.Background(), dense802154.Query{
		Kind: dense802154.KindEvaluate,
	})
	if err != nil {
		panic(err)
	}
	m := rs.Results[0].Value().(dense802154.Metrics)
	p := dense802154.DefaultParams()

	fmt.Println("One 802.15.4 microsensor node in a dense network:")
	fmt.Printf("  transmit level      : %+g dBm (link-adapted for %g dB path loss)\n",
		m.TXPowerDBm, p.PathLossDB)
	fmt.Printf("  average power       : %v\n", m.AvgPower)
	fmt.Printf("  transmission failure: %.1f%%\n", m.PrFail*100)
	fmt.Printf("  delivery delay      : %v\n", m.Delay.Round(1e6))
	fmt.Printf("  energy per data bit : %.0f nJ\n", m.EnergyPerBitJ*1e9)

	sh := m.Breakdown.Share()
	fmt.Println("\nWhere the energy goes (paper Fig. 9a):")
	labels := []string{"beacon", "contention", "transmit", "ack", "ifs"}
	for i, l := range labels {
		fmt.Printf("  %-10s %5.1f%%\n", l, sh[i]*100)
	}

	fr := m.States.Fractions()
	fmt.Println("\nWhere the time goes (paper Fig. 9b):")
	states := []string{"shutdown", "idle", "rx", "tx"}
	order := []int{0, 1, 2, 3}
	for _, i := range order {
		fmt.Printf("  %-10s %8.4f%%\n", states[i], fr[i]*100)
	}

	// The wire form of the same result (what /v2/query and wsn-query
	// print) is byte-stable: rs.Encode() yields the same bytes on every
	// run at any worker count.
	body, _ := rs.Encode()
	fmt.Printf("\nResultSet encoding: %d bytes, kind=%s, %d task(s)\n",
		len(body), rs.Kind, len(rs.Results))
}
