// Command scenarios walks through the cross-model scenario catalog: what a
// scenario declares, how one runs through both the analytical model and the
// discrete-event simulator, how agreement is scored, and how the committed
// golden files turn the catalog into a regression harness.
//
//	go run ./examples/scenarios
package main

import (
	"context"
	"fmt"
	"log"

	"dense802154"
)

func main() {
	ctx := context.Background()

	// 1. The catalog: named operating points spanning density, traffic,
	// duty cycle, payload and deployment geometry.
	fmt.Println("== The scenario catalog ==")
	for _, sc := range dense802154.Scenarios() {
		load, _ := sc.Load()
		fmt.Printf("  %-24s %3d nodes × %3d B, BO=SO=%d, λ=%.3f\n",
			sc.Name, sc.Nodes, sc.PayloadBytes, sc.BO, load)
	}

	// 2. Run one scenario through BOTH implementations. The same seed
	// drives every random stream, so this is reproducible bit for bit at
	// any worker count.
	name := "baseline-case-study"
	sc, _ := dense802154.ScenarioByName(name)
	fmt.Printf("\n== Running %s through both models ==\n", name)
	res, err := dense802154.RunScenario(ctx, sc, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("analytic:  power %.1f µW, Pr[fail] %.3f, T̄cont %.2f ms, N̄CCA %.2f\n",
		float64(res.Analytic.MeanPowerUW), float64(res.Analytic.MeanPrFail),
		float64(res.Analytic.TcontMS), float64(res.Analytic.NCCA))
	fmt.Printf("simulated: power %.1f ±%.1f µW, Pr[fail] %.3f ±%.3f (%d replicas)\n",
		float64(res.Sim.PowerUW.Mean), float64(res.Sim.PowerUW.CI95),
		float64(res.Sim.PrFail.Mean), float64(res.Sim.PrFail.CI95), res.Sim.Replicas)

	// 3. Agreement is scored per metric against the scenario's declared
	// tolerances (absolute + relative + CI slack).
	fmt.Println("\n== Agreement scoring ==")
	for _, c := range res.Comparisons {
		verdict := "PASS"
		if !c.Pass {
			verdict = "FAIL"
		}
		fmt.Printf("  %-10s analytic %10.4g  sim %10.4g ±%-8.2g |Δ| %8.3g ≤ %8.3g  %s\n",
			c.Metric, float64(c.Analytic), float64(c.Sim), float64(c.SimCI95),
			float64(c.AbsDiff), float64(c.Allowed), verdict)
	}

	// 4. The regression harness: the committed golden pins these bytes.
	// On the same platform a fresh run must reproduce the golden exactly;
	// cross-platform, drift must stay inside the tolerances.
	fmt.Println("\n== Golden diff ==")
	rep, err := dense802154.DiffScenario(res)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("byte-identical to committed golden: %v; within tolerance: %v\n",
		rep.ByteIdentical, rep.Pass)
	fmt.Println("\nregenerate goldens after an intended behavior change with:")
	fmt.Println("  go test ./internal/scenario -run TestGoldens -update")
}
