// Contention: characterize the slotted CSMA/CA algorithm by Monte-Carlo
// simulation (the methodology behind Fig. 6) and show why the paper
// rejects the Battery Life Extension mode for dense networks.
//
//	go run ./examples/contention
package main

import (
	"fmt"

	"dense802154"
	"dense802154/internal/mac"
)

func main() {
	fmt.Println("Slotted CSMA/CA under load (100-node channel, BO=6, 120 B packets):")
	fmt.Printf("%8s %12s %8s %8s %8s\n", "load λ", "T̄cont", "N̄CCA", "Pr_cf", "Pr_col")
	for _, load := range []float64{0.1, 0.2, 0.3, 0.42, 0.6, 0.8} {
		r := dense802154.SimulateContention(dense802154.ContentionConfig{
			TargetLoad:  load,
			Superframes: 60,
			Seed:        1,
		})
		fmt.Printf("%8.2f %12v %8.2f %8.3f %8.3f\n",
			load, r.MeanContention.Round(1000), r.MeanCCAs, r.PrCF, r.PrCol)
	}

	fmt.Println("\nThe same channel when every node contends right after the beacon:")
	burst := dense802154.SimulateContention(dense802154.ContentionConfig{
		TargetLoad:  0.42,
		Superframes: 60,
		Seed:        1,
		Arrival:     1, // contention.ArrivalAtBeacon
	})
	fmt.Printf("  burst arrivals: T̄cont=%v  Pr_cf=%.2f  Pr_col=%.2f\n",
		burst.MeanContention.Round(1000), burst.PrCF, burst.PrCol)

	fmt.Println("\nBattery Life Extension (BE ≤ 2) under the same burst:")
	p := mac.PaperParams()
	p.BatteryLifeExt = true
	ble := dense802154.SimulateContention(dense802154.ContentionConfig{
		TargetLoad:  0.42,
		Superframes: 60,
		Seed:        1,
		Arrival:     1,
		CSMA:        p,
	})
	fmt.Printf("  BLE: Pr_col=%.2f (standard: %.2f) — the paper's 'excessive collision\n",
		ble.PrCol, burst.PrCol)
	fmt.Println("  rate' that rules BLE out for dense microsensor networks.")
}
