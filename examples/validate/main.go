// Validate: run the same dense-channel scenario through the analytical
// model (the paper's eqs. 3-14) and the cycle-accurate discrete-event
// simulator, and compare.
//
//	go run ./examples/validate
package main

import (
	"fmt"
	"time"

	"dense802154"
)

func main() {
	fmt.Println("Analytical model (paper §4) vs discrete-event simulation...")

	cs, err := dense802154.RunCaseStudy(dense802154.DefaultParams(), dense802154.DefaultCaseStudy())
	if err != nil {
		panic(err)
	}
	sim := dense802154.Simulate(dense802154.SimConfig{
		Nodes:       100,
		Superframes: 40,
		Seed:        7,
	})

	fmt.Printf("\n%-28s %16s %16s\n", "metric", "model", "simulation")
	fmt.Printf("%-28s %16v %16v\n", "average power per node", cs.AvgPower, sim.AvgPowerPerNode)
	fmt.Printf("%-28s %16v %16v\n", "mean delivery delay",
		cs.MeanDelay.Round(time.Millisecond), sim.MeanDelay.Round(time.Millisecond))
	fmt.Printf("%-28s %16s %15.1f%%\n", "delivery ratio", "—", sim.DeliveryRatio*100)
	fmt.Printf("%-28s %16s %16v\n", "in-situ T̄cont", "(MC input)", sim.Contention.Tcont.Round(time.Microsecond))
	fmt.Printf("%-28s %16s %16.2f\n", "in-situ N̄CCA", "(MC input)", sim.Contention.NCCA)

	diff := (sim.AvgPowerPerNode.MicroWatts() - cs.AvgPower.MicroWatts()) / cs.AvgPower.MicroWatts()
	fmt.Printf("\nPower agreement: %+.1f%% — the expected-value model and the event-level\n", diff*100)
	fmt.Println("accounting of the same activation policy coincide; the paper's analytical")
	fmt.Println("shortcut is sound for energy. (Collision-retry correlation, which the")
	fmt.Println("model ignores, shows up only in the simulator's per-attempt statistics.)")
}
