// Packet sizing: the Fig. 8 study. Small packets waste energy on fixed
// PHY/MAC overhead; large packets risk corruption and channel access
// failure — yet energy per bit falls monotonically up to the 123-byte
// maximum the standard allows.
//
//	go run ./examples/packetsizing
package main

import (
	"fmt"

	"dense802154"
)

func main() {
	sizes := []int{5, 10, 20, 40, 60, 80, 100, 120, 123}
	loads := []float64{0.10, 0.25, 0.42, 0.60}

	fmt.Println("Energy per data bit [nJ] vs payload size (path loss 75 dB):")
	fmt.Printf("%10s", "payload")
	for _, l := range loads {
		fmt.Printf("   λ=%.2f", l)
	}
	fmt.Println()

	curves := make(map[float64][]float64)
	for _, l := range loads {
		p := dense802154.DefaultParams()
		p.Load = l
		s, err := dense802154.EnergyVsPayload(p, sizes)
		if err != nil {
			panic(err)
		}
		curves[l] = s.Y
	}
	for i, L := range sizes {
		fmt.Printf("%8d B", L)
		for _, l := range loads {
			fmt.Printf("   %6.0f", curves[l][i]*1e9)
		}
		fmt.Println()
	}

	p := dense802154.DefaultParams()
	opt, e, err := dense802154.OptimalPayload(p, 1)
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nOptimal payload: %d bytes at %.0f nJ/bit — the maximum the standard\n", opt, e*1e9)
	fmt.Println("allows; the paper: 'reaching the optimum requires a larger packet size.'")
	fmt.Println("The case study therefore buffers 120 bytes (960 ms of sensing) per packet.")
}
