// Link adaptation: compute the energy-optimal transmit-power switching
// thresholds (the circles of Fig. 7) and the savings of channel inversion
// over always transmitting at full power.
//
//	go run ./examples/linkadaptation
package main

import (
	"fmt"

	"dense802154"
	"dense802154/internal/channel"
)

func main() {
	p := dense802154.DefaultParams()
	grid := channel.LossGrid(40, 95, 56)

	fmt.Println("TX power switching thresholds (energy-curve crossings, Fig. 7):")
	ths, err := dense802154.Thresholds(p, grid)
	if err != nil {
		panic(err)
	}
	for _, t := range ths {
		fmt.Printf("  %v\n", t)
	}

	fmt.Println("\nLoad independence (paper: thresholds do not move with λ):")
	for _, load := range []float64{0.1, 0.6} {
		q := p
		q.Load = load
		th, err := dense802154.Thresholds(q, grid)
		if err != nil {
			panic(err)
		}
		fmt.Printf("  λ=%.2f:", load)
		for _, t := range th {
			fmt.Printf(" %.1f", t.LossDB)
		}
		fmt.Println(" dB")
	}

	fmt.Println("\nEnergy per bit with adaptation (lower envelope of Fig. 7):")
	fmt.Printf("  %8s %12s %12s %9s\n", "loss[dB]", "adapted", "always 0dBm", "savings")
	for _, a := range []float64{45, 55, 65, 75, 85} {
		q := p
		q.PathLossDB = a
		q.TXLevelIndex = dense802154.AutoTXLevel
		adapted, err := dense802154.Evaluate(q)
		if err != nil {
			panic(err)
		}
		q.TXLevelIndex = len(p.Radio.TXLevels) - 1
		full, err := dense802154.Evaluate(q)
		if err != nil {
			panic(err)
		}
		s, err := dense802154.AdaptationSavings(p, a)
		if err != nil {
			panic(err)
		}
		fmt.Printf("  %8.0f %9.0f nJ %9.0f nJ %8.1f%%\n",
			a, adapted.EnergyPerBitJ*1e9, full.EnergyPerBitJ*1e9, s*100)
	}
	fmt.Println("\npaper: 'adaptation of the transmit power can save up to 40% of the total energy'")
}
