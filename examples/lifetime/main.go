// Lifetime: translate the case-study power into supply terms — the
// paper's motivation is a 100 µW budget that energy scavenging can
// sustain indefinitely.
//
//	go run ./examples/lifetime
package main

import (
	"fmt"

	"dense802154"
	"dense802154/internal/battery"
	"dense802154/internal/units"
)

func main() {
	cfg := dense802154.DefaultCaseStudy()
	res, err := dense802154.RunCaseStudy(dense802154.DefaultParams(), cfg)
	if err != nil {
		panic(err)
	}
	imp, err := dense802154.EvaluateImprovements(dense802154.DefaultParams(), cfg)
	if err != nil {
		panic(err)
	}

	coin := battery.CoinCellCR2032()
	aa := battery.AACell()
	harvester := battery.VibrationHarvester()

	fmt.Printf("Case-study node: %v average power (paper: 211 µW)\n\n", res.AvgPower)
	show := func(name string, p units.Power) {
		dCoin, _ := coin.Lifetime(p)
		dAA, _ := aa.Lifetime(p)
		sustainable := harvester.Sustainable(p)
		fmt.Printf("%-36s %10v   CR2032: %-11s AA: %-10s self-powered: %v\n",
			name, p, battery.LifetimeString(dCoin), battery.LifetimeString(dAA), sustainable)
	}
	show("CC2420 baseline", res.AvgPower)
	for _, r := range imp.Rows {
		show(r.Name, r.AvgPower)
	}
	show("scavenging budget (paper goal)", 100*units.MicroWatt)

	fmt.Println("\nWith a 100 µW vibration harvester topping up an AA cell:")
	boosted := aa.WithHarvest(100 * units.MicroWatt)
	d, _ := boosted.Lifetime(res.AvgPower)
	fmt.Printf("  baseline node lasts %s instead of ", battery.LifetimeString(d))
	d2, _ := aa.Lifetime(res.AvgPower)
	fmt.Printf("%s\n", battery.LifetimeString(d2))
	fmt.Println("\nThe paper's conclusion stands: the standard gets within ≈2x of")
	fmt.Println("self-powered operation; the §5 radio improvements close most of the")
	fmt.Println("remaining gap (see examples/improvements).")
}
