// Example serveclient drives the Fig. 8 packet-size study through the HTTP
// batch-evaluation service instead of in-process calls: it POSTs one
// /v1/sweep/payload request per network load and prints the energy-per-bit
// table, exactly the workload a dashboard or notebook client would submit.
//
// By default it spins up an in-process server so the example is
// self-contained; point it at a running wsn-serve with
//
//	go run ./examples/serveclient -addr http://localhost:8080
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"

	"dense802154/internal/service"
)

type sweepRequest struct {
	Params map[string]any `json:"params"`
	Sizes  []int          `json:"sizes"`
}

type sweepResponse struct {
	SizesBytes []int           `json:"sizes_bytes"`
	EnergyJ    []service.Float `json:"energy_j_per_bit"`
}

func main() {
	addr := flag.String("addr", "", "base URL of a running wsn-serve (empty: start an in-process server)")
	flag.Parse()

	base := *addr
	if base == "" {
		ts := httptest.NewServer(service.NewServer(service.Config{CacheLimit: 1024}))
		defer ts.Close()
		base = ts.URL
		fmt.Printf("started in-process server at %s\n\n", base)
	}

	sizes := []int{10, 20, 40, 60, 80, 100, 120, 123}
	loads := []float64{0.10, 0.25, 0.42}

	curves := make([][]service.Float, len(loads))
	for i, load := range loads {
		req := sweepRequest{
			Params: map[string]any{
				"load":       load,
				"contention": map[string]any{"superframes": 30, "seed": 2005},
			},
			Sizes: sizes,
		}
		body, _ := json.Marshal(req)
		resp, err := http.Post(base+"/v1/sweep/payload", "application/json", bytes.NewReader(body))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if resp.StatusCode != http.StatusOK {
			var e bytes.Buffer
			e.ReadFrom(resp.Body)
			resp.Body.Close()
			fmt.Fprintf(os.Stderr, "HTTP %d: %s\n", resp.StatusCode, e.String())
			os.Exit(1)
		}
		var sr sweepResponse
		if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		resp.Body.Close()
		curves[i] = sr.EnergyJ
	}

	fmt.Println("Fig. 8 over HTTP: link-adapted energy per bit vs payload (75 dB path loss)")
	fmt.Printf("%-12s", "payload [B]")
	for _, l := range loads {
		fmt.Printf("  λ=%.2f [nJ/bit]", l)
	}
	fmt.Println()
	for j, L := range sizes {
		fmt.Printf("%-12d", L)
		for i := range loads {
			fmt.Printf("  %15.1f", float64(curves[i][j])*1e9)
		}
		fmt.Println()
	}
	fmt.Println("\nthe energy per bit decreases monotonically up to the 123-byte maximum,")
	fmt.Println("reproducing the paper's packet-sizing conclusion through the service path.")
}
