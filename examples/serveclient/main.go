// Example serveclient drives the Fig. 8 packet-size study through the
// unified HTTP query API instead of in-process calls: it POSTs one
// payload-sweep Query per network load to /v2/query and prints the
// energy-per-bit table, exactly the workload a dashboard or notebook
// client would submit. It then re-runs the heaviest sweep through
// /v2/query/stream to show the NDJSON framing.
//
// By default it spins up an in-process server so the example is
// self-contained; point it at a running wsn-serve with
//
//	go run ./examples/serveclient -addr http://localhost:8080
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"

	"dense802154/internal/service"
)

// queryDoc is the /v2/query request: one declarative document per
// computation (the server validates kind/field compatibility).
type queryDoc struct {
	Kind     string         `json:"kind"`
	Params   map[string]any `json:"params,omitempty"`
	Payloads map[string]any `json:"payloads,omitempty"`
}

// resultSet mirrors the slice of the v2 ResultSet this client consumes.
type resultSet struct {
	Version int    `json:"version"`
	Kind    string `json:"kind"`
	Results []struct {
		Payload struct {
			SizesBytes []int           `json:"sizes_bytes"`
			EnergyJ    []service.Float `json:"energy_j_per_bit"`
		} `json:"payload"`
	} `json:"results"`
}

func post(base, path string, doc queryDoc) (*http.Response, error) {
	body, _ := json.Marshal(doc)
	return http.Post(base+path, "application/json", bytes.NewReader(body))
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

func main() {
	addr := flag.String("addr", "", "base URL of a running wsn-serve (empty: start an in-process server)")
	flag.Parse()

	base := *addr
	if base == "" {
		ts := httptest.NewServer(service.NewServer(service.Config{CacheLimit: 1024}))
		defer ts.Close()
		base = ts.URL
		fmt.Printf("started in-process server at %s\n\n", base)
	}

	sizes := []int{10, 20, 40, 60, 80, 100, 120, 123}
	loads := []float64{0.10, 0.25, 0.42}

	curves := make([][]service.Float, len(loads))
	for i, load := range loads {
		doc := queryDoc{
			Kind: "payload-sweep",
			Params: map[string]any{
				"load":       load,
				"contention": map[string]any{"superframes": 30, "seed": 2005},
			},
			Payloads: map[string]any{"values": sizes},
		}
		resp, err := post(base, "/v2/query", doc)
		if err != nil {
			fail(err)
		}
		if resp.StatusCode != http.StatusOK {
			var e bytes.Buffer
			e.ReadFrom(resp.Body)
			resp.Body.Close()
			fail(fmt.Errorf("HTTP %d: %s", resp.StatusCode, e.String()))
		}
		var rs resultSet
		if err := json.NewDecoder(resp.Body).Decode(&rs); err != nil {
			fail(err)
		}
		resp.Body.Close()
		curves[i] = rs.Results[0].Payload.EnergyJ
	}

	fmt.Println("Fig. 8 over /v2/query: link-adapted energy per bit vs payload (75 dB path loss)")
	fmt.Printf("%-12s", "payload [B]")
	for _, l := range loads {
		fmt.Printf("  λ=%.2f [nJ/bit]", l)
	}
	fmt.Println()
	for j, L := range sizes {
		fmt.Printf("%-12d", L)
		for i := range loads {
			fmt.Printf("  %15.1f", float64(curves[i][j])*1e9)
		}
		fmt.Println()
	}

	// The streaming variant frames the same results as NDJSON — one
	// task-result line per plan task, then a done line. A payload sweep is
	// a single task; batches and replica plans stream element by element.
	resp, err := post(base, "/v2/query/stream", queryDoc{
		Kind: "payload-sweep",
		Params: map[string]any{
			"load":       loads[len(loads)-1],
			"contention": map[string]any{"superframes": 30, "seed": 2005},
		},
		Payloads: map[string]any{"values": sizes},
	})
	if err != nil {
		fail(err)
	}
	defer resp.Body.Close()
	lines := 0
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		lines++
	}
	fmt.Printf("\n/v2/query/stream framed the same sweep as %d NDJSON lines (tasks + done).\n", lines)
	fmt.Println("the energy per bit decreases monotonically up to the 123-byte maximum,")
	fmt.Println("reproducing the paper's packet-sizing conclusion through the service path.")
}
