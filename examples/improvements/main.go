// Improvement perspectives: quantify the paper's §5 proposals — halving
// the radio state-transition times and adding a scalable receiver with a
// low-power listen mode — on the dense case-study scenario.
//
//	go run ./examples/improvements
package main

import (
	"fmt"

	"dense802154"
)

func main() {
	p := dense802154.DefaultParams()
	cfg := dense802154.DefaultCaseStudy()

	res, err := dense802154.EvaluateImprovements(p, cfg)
	if err != nil {
		panic(err)
	}

	fmt.Printf("Baseline CC2420: %v average power (paper: 211 µW)\n\n", res.Baseline)
	fmt.Printf("%-36s %12s %10s %s\n", "radio architecture", "avg power", "reduction", "paper")
	paper := []string{"-12%", "-15% additional", ""}
	for i, r := range res.Rows {
		fmt.Printf("%-36s %12v %9.1f%% %s\n", r.Name, r.AvgPower, r.Reduction*100, paper[i])
	}

	fmt.Println("\nThe contention share is dominated by receiver start-up energy for")
	fmt.Println("clear channel assessment; the ack share by the receiver idling in the")
	fmt.Println("acknowledgment window. Both respond to the proposed radio changes,")
	fmt.Println("moving the node toward the 100 µW energy-scavenging budget.")
}
