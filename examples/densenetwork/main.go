// Dense network: the paper's §5 case study end to end — 1600 nodes on 16
// channels, 1 byte sensed every 8 ms, 120-byte buffered packets, beacon
// order 6, path losses uniform in 55-95 dB.
//
//	go run ./examples/densenetwork
package main

import (
	"fmt"
	"time"

	"dense802154"
)

func main() {
	p := dense802154.DefaultParams()
	cfg := dense802154.DefaultCaseStudy()

	fmt.Printf("Scenario: %d nodes on %d channels (%d per channel)\n",
		cfg.Nodes, cfg.Channels, cfg.NodesPerChannel())
	fmt.Printf("Sensing 1 byte / 8 ms -> a %d-byte payload buffers in %v\n",
		p.PayloadBytes, cfg.BufferingDelay(p.PayloadBytes))

	res, err := dense802154.RunCaseStudy(p, cfg)
	if err != nil {
		panic(err)
	}

	fmt.Printf("\nPer-channel load λ = %.1f%% (paper: 42%%)\n", res.Load*100)
	fmt.Printf("Population average power : %v   (paper: 211 µW)\n", res.AvgPower)
	fmt.Printf("Transmission failure     : %.1f%%   (paper: 16%%)\n", res.MeanPrFail*100)
	fmt.Printf("Delivery delay (mean)    : %v   (paper: 1.45 s)\n", res.MeanDelay.Round(10*time.Millisecond))
	fmt.Printf("Energy per delivered bit : %.0f nJ\n", res.MeanEnergyJ*1e9)
	fmt.Printf("Energy-scavenging target : 100 µW -> missed by %.1fx, as the paper concludes\n",
		res.AvgPower.MicroWatts()/100)

	fmt.Println("\nPer-path-loss sample:")
	fmt.Printf("  %8s %10s %8s %9s\n", "loss[dB]", "power[µW]", "PrFail", "TX level")
	for i := 0; i < len(res.LossGrid); i += len(res.LossGrid) / 8 {
		fmt.Printf("  %8.1f %10.1f %8.3f %+8g dBm\n",
			res.LossGrid[i], res.PowerUW[i], res.PrFail[i],
			p.Radio.TXLevels[res.LevelUsed[i]].DBm)
	}
}
