package dense802154_test

import (
	"bytes"
	"flag"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

var updateSurface = flag.Bool("update", false, "rewrite testdata/api_surface.golden from the current source")

// TestAPISurfaceGolden pins the exported surface of the root package: every
// exported function signature, type declaration, constant and variable is
// dumped to a stable text form and diffed against the committed golden.
// An accidental breaking change — removing a facade, changing a signature,
// renaming a type — fails here with a reviewable diff; an intended change
// is committed with
//
//	go test . -run TestAPISurfaceGolden -update
func TestAPISurfaceGolden(t *testing.T) {
	got := dumpSurface(t)
	golden := filepath.Join("testdata", "api_surface.golden")
	if *updateSurface {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", golden)
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden (run with -update to create it): %v", err)
	}
	if got == string(want) {
		return
	}
	t.Errorf("the exported API surface changed; if intended, rerun with -update and commit the diff")
	gotLines := strings.Split(got, "\n")
	wantLines := strings.Split(string(want), "\n")
	gotSet := map[string]bool{}
	for _, l := range gotLines {
		gotSet[l] = true
	}
	wantSet := map[string]bool{}
	for _, l := range wantLines {
		wantSet[l] = true
	}
	for _, l := range wantLines {
		if l != "" && !gotSet[l] {
			t.Errorf("removed: %s", l)
		}
	}
	for _, l := range gotLines {
		if l != "" && !wantSet[l] {
			t.Errorf("added:   %s", l)
		}
	}
}

var spaceRE = regexp.MustCompile(`\s+`)

// dumpSurface renders the exported declarations of the root package, one
// per line, sorted.
func dumpSurface(t *testing.T) string {
	t.Helper()
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, ".", func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	pkg, ok := pkgs["dense802154"]
	if !ok {
		t.Fatalf("root package not found (got %v)", pkgs)
	}

	render := func(node any) string {
		var buf bytes.Buffer
		if err := printer.Fprint(&buf, fset, node); err != nil {
			t.Fatal(err)
		}
		return spaceRE.ReplaceAllString(buf.String(), " ")
	}

	var lines []string
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if !d.Name.IsExported() || d.Recv != nil {
					continue
				}
				cp := *d
				cp.Doc = nil
				cp.Body = nil
				lines = append(lines, render(&cp))
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						if !s.Name.IsExported() {
							continue
						}
						cp := *s
						cp.Doc = nil
						cp.Comment = nil
						lines = append(lines, "type "+render(&cp))
					case *ast.ValueSpec:
						exported := false
						for _, n := range s.Names {
							if n.IsExported() {
								exported = true
							}
						}
						if !exported {
							continue
						}
						cp := *s
						cp.Doc = nil
						cp.Comment = nil
						kw := "var"
						if d.Tok == token.CONST {
							kw = "const"
						}
						lines = append(lines, kw+" "+render(&cp))
					}
				}
			}
		}
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n") + "\n"
}
