package dense802154_test

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"dense802154"
)

func TestFacadeHTTPHandler(t *testing.T) {
	ts := httptest.NewServer(dense802154.NewHTTPHandler(dense802154.ServeConfig{Workers: 1}))
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}

	resp, err = http.Post(ts.URL+"/v1/evaluate", "application/json",
		strings.NewReader(`{"params":{"contention":{"superframes":8,"seed":3}}}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("evaluate = %d", resp.StatusCode)
	}
	var body struct {
		Metrics struct {
			AvgPowerW float64 `json:"avg_power_w"`
		} `json:"metrics"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if uw := body.Metrics.AvgPowerW * 1e6; uw < 100 || uw > 400 {
		t.Fatalf("mid-loss node power over HTTP = %v µW, implausible", uw)
	}
}

func TestFacadeSimulateReplicas(t *testing.T) {
	cfg := dense802154.SimConfig{Nodes: 15, Superframes: 3, Seed: 11}
	rs, err := dense802154.SimulateReplicas(context.Background(), cfg, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Replicas != 3 || len(rs.Results) != 3 {
		t.Fatalf("shape: %+v", rs)
	}
	direct := dense802154.Simulate(cfg)
	if rs.Results[0].AvgPowerPerNode != direct.AvgPowerPerNode {
		t.Fatal("replica 0 does not reproduce Simulate at the base seed")
	}
	if rs.AvgPowerUW.Mean <= 0 {
		t.Fatalf("implausible power stat %+v", rs.AvgPowerUW)
	}
}

func TestFacadeContentionCacheControls(t *testing.T) {
	dense802154.ContentionCacheReset()
	t.Cleanup(func() {
		dense802154.SetContentionCacheLimit(0)
		dense802154.ContentionCacheReset()
	})
	dense802154.SetContentionCacheLimit(2)

	// Three distinct contention points through the bounded cache.
	for _, payload := range []int{20, 60, 120} {
		p := dense802154.DefaultParams()
		p.Workers = 1
		p.PayloadBytes = payload
		if _, err := dense802154.Evaluate(p); err != nil {
			t.Fatal(err)
		}
	}
	st := dense802154.ContentionCacheStats()
	if st.Limit != 2 {
		t.Fatalf("limit = %d, want 2", st.Limit)
	}
	if st.Entries > 2 {
		t.Fatalf("entries = %d exceeds the bound", st.Entries)
	}
	if st.Evictions == 0 {
		t.Fatalf("no evictions recorded: %+v", st)
	}
	if st.Misses < 3 {
		t.Fatalf("misses = %d, want ≥ 3 distinct simulations", st.Misses)
	}
}
