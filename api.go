package dense802154

import (
	"context"
	"net/http"

	"dense802154/internal/contention"
	"dense802154/internal/core"
	"dense802154/internal/engine"
	"dense802154/internal/experiments"
	"dense802154/internal/netsim"
	"dense802154/internal/phy"
	"dense802154/internal/query"
	"dense802154/internal/radio"
	"dense802154/internal/scenario"
	"dense802154/internal/service"
	"dense802154/internal/stats"
	"dense802154/internal/units"
)

// Re-exported model types. Params configures one evaluation of the paper's
// analytical model; Metrics is its output.
type (
	Params            = core.Params
	Metrics           = core.Metrics
	Breakdown         = core.Breakdown
	StateTimes        = core.StateTimes
	CaseStudyConfig   = core.CaseStudyConfig
	CaseStudyResult   = core.CaseStudyResult
	Threshold         = core.Threshold
	EnergyCurve       = core.EnergyCurve
	ImprovementResult = core.ImprovementResult
)

// Re-exported radio types.
type (
	Radio   = radio.Characterization
	TXLevel = radio.TXLevel
	Power   = units.Power
	Energy  = units.Energy
)

// Re-exported contention and simulation types.
type (
	ContentionConfig = contention.Config
	ContentionResult = contention.Result
	ContentionStats  = contention.Stats
	SimConfig        = netsim.Config
	SimResult        = netsim.Result
	SimReplicaSet    = netsim.ReplicaSet
	ReplicaStat      = netsim.ReplicaStat
	Experiment       = experiments.Experiment
	ExperimentOpts   = experiments.Options
	Table            = stats.Table
	CacheStats       = engine.CacheStats
)

// Re-exported unified-query types: one declarative, versioned request type
// over the model, the simulator, the sweeps and the scenario catalog. A
// Query names an operating point (or a grid of them) and a kind selecting
// what to compute; Run returns one tagged ResultSet. The wire-facing spec
// types (QueryParams and friends) mirror the JSON the HTTP v2 endpoints
// accept, so an in-process Query literal and a POST /v2/query body are the
// same vocabulary.
type (
	Query        = query.Query
	QueryKind    = query.Kind
	QueryAxis    = query.Axis
	QueryIntAxis = query.IntAxis
	ResultSet    = query.ResultSet
	TaskResult   = query.TaskResult

	QueryParams          = query.ParamsWire
	QueryContention      = query.ContentionWire
	QuerySuperframe      = query.SuperframeWire
	QueryCaseStudyConfig = query.CaseStudyConfigWire
	QuerySimConfig       = query.SimConfigWire
	ReplicaSummary       = query.ReplicaSummaryWire
)

// The query kinds, one per computation the repository offers.
const (
	KindEvaluate      = query.KindEvaluate
	KindBatch         = query.KindBatch
	KindCaseStudy     = query.KindCaseStudy
	KindPathLossSweep = query.KindPathLossSweep
	KindPayloadSweep  = query.KindPayloadSweep
	KindThresholds    = query.KindThresholds
	KindSimulate      = query.KindSimulate
	KindReplicas      = query.KindReplicas
	KindScenario      = query.KindScenario
	KindExperiment    = query.KindExperiment
)

// Run validates q, compiles it to a deterministic execution plan and runs
// the plan on the shared engine worker pool (q.Workers goroutines, 0 ⇒
// NumCPU). Results are bit-identical at any worker count and byte-stable
// across runs (ResultSet.Encode); a canceled ctx stops the plan promptly
// with ctx.Err(). Validation failures return a field-scoped *query.Error.
//
// Run is the single entry point the rest of the public surface is built
// on: the classic facade functions below are thin wrappers over it, the
// HTTP service exposes it as POST /v2/query, and cmd/wsn-query drives it
// from the command line.
func Run(ctx context.Context, q Query) (*ResultSet, error) { return query.Run(ctx, q) }

// RunStream is Run with per-task streaming: yield receives every
// TaskResult in plan order (batch elements, simulation replicas) as soon
// as it and its predecessors complete, while later tasks are still
// computing. A yield error cancels the remaining tasks and is returned.
// The full ResultSet — bit-identical to what Run returns — is assembled
// and returned once the plan drains.
func RunStream(ctx context.Context, q Query, yield func(TaskResult) error) (*ResultSet, error) {
	return query.RunStream(ctx, q, yield)
}

// AutoTXLevel requests link adaptation in Params.TXLevelIndex.
const AutoTXLevel = core.AutoTXLevel

// DefaultParams returns the paper's §5 case-study configuration: CC2420
// radio, eq. (1) bit-error model, Monte-Carlo contention source, BO=6,
// 120-byte packets at 43% load.
func DefaultParams() Params { return core.DefaultParams() }

// Evaluate runs the analytical model (eqs. 3-14). It is a thin wrapper
// over Run with a single-evaluation Query.
func Evaluate(p Params) (Metrics, error) {
	rs, err := Run(context.Background(), Query{
		Kind:    KindEvaluate,
		Workers: p.Workers,
		Direct:  &query.Direct{Params: &p},
	})
	if err != nil {
		return Metrics{}, err
	}
	return rs.Results[0].Value().(Metrics), nil
}

// EvaluateBatch evaluates many parameter sets concurrently on a worker pool
// and returns the metrics in input order. The pool is sized to the largest
// Params.Workers in the batch; if any element leaves Workers unset (≤ 0)
// the pool defaults to runtime.NumCPU(). Setting Workers = 1 on every
// element forces serial evaluation — the escape hatch for contention
// sources that are not safe for concurrent use.
//
// The batch is deterministic — identical to a serial loop of Evaluate at
// any parallelism — and a canceled ctx stops it promptly with ctx.Err().
// Contention statistics shared between elements are simulated once for the
// whole batch (see ContentionCacheReset to bound long-lived cache growth).
func EvaluateBatch(ctx context.Context, ps []Params) ([]Metrics, error) {
	workers := 1
	for _, p := range ps {
		if p.Workers < 1 {
			workers = 0 // an element asks for the NumCPU default
			break
		}
		if p.Workers > workers {
			workers = p.Workers
		}
	}
	rs, err := Run(ctx, Query{
		Kind:    KindBatch,
		Workers: workers,
		Direct:  &query.Direct{Batch: ps},
	})
	if err != nil {
		return nil, err
	}
	out := make([]Metrics, len(rs.Results))
	for i := range rs.Results {
		out[i] = rs.Results[i].Value().(Metrics)
	}
	return out, nil
}

// ContentionCacheReset drops the process-wide memoized Monte-Carlo
// contention cache. Long-running services sweeping unbounded parameter
// spaces should call it between sweeps to bound memory — or install a
// standing bound with SetContentionCacheLimit.
func ContentionCacheReset() { contention.ResetCache() }

// SetContentionCacheLimit bounds the process-wide contention cache to at
// most n Monte-Carlo characterizations with least-recently-used eviction;
// n ≤ 0 removes the bound.
func SetContentionCacheLimit(n int) { contention.SetCacheLimit(n) }

// ContentionCacheStats snapshots the contention cache's hit/miss/eviction
// counters and current size.
func ContentionCacheStats() CacheStats { return contention.CacheStats() }

// OptimalTXLevel picks the energy-optimal transmit level for p's path loss
// (channel-inversion link adaptation).
func OptimalTXLevel(p Params) (int, error) { return core.OptimalTXLevel(p) }

// Thresholds locates the link-adaptation switching path losses (Fig. 7).
func Thresholds(p Params, losses []float64) ([]Threshold, error) {
	return ThresholdsCtx(context.Background(), p, losses)
}

// ThresholdsCtx is Thresholds with cancellation. It wraps Run with a
// thresholds Query.
func ThresholdsCtx(ctx context.Context, p Params, losses []float64) ([]Threshold, error) {
	rs, err := Run(ctx, Query{
		Kind:    KindThresholds,
		Workers: p.Workers,
		Direct:  &query.Direct{Params: &p, Losses: losses},
	})
	if err != nil {
		return nil, err
	}
	return rs.Results[0].Value().([]Threshold), nil
}

// EnergyVsPathLoss evaluates energy per bit across a path-loss grid for
// every transmit level (the Fig. 7 curve family).
func EnergyVsPathLoss(p Params, losses []float64) ([]EnergyCurve, error) {
	return EnergyVsPathLossCtx(context.Background(), p, losses)
}

// EnergyVsPathLossCtx is EnergyVsPathLoss with cancellation. It wraps Run
// with a pathloss-sweep Query.
func EnergyVsPathLossCtx(ctx context.Context, p Params, losses []float64) ([]EnergyCurve, error) {
	rs, err := Run(ctx, Query{
		Kind:    KindPathLossSweep,
		Workers: p.Workers,
		Direct:  &query.Direct{Params: &p, Losses: losses},
	})
	if err != nil {
		return nil, err
	}
	return rs.Results[0].Value().([]EnergyCurve), nil
}

// AdaptationSavings reports the energy saved by link adaptation versus
// always transmitting at full power.
func AdaptationSavings(p Params, lossDB float64) (float64, error) {
	return core.AdaptationSavings(p, lossDB)
}

// EnergyVsPayload evaluates energy per bit across payload sizes (Fig. 8).
func EnergyVsPayload(p Params, sizes []int) (stats.Series, error) {
	return EnergyVsPayloadCtx(context.Background(), p, sizes)
}

// EnergyVsPayloadCtx is EnergyVsPayload with cancellation. It wraps Run
// with a payload-sweep Query.
func EnergyVsPayloadCtx(ctx context.Context, p Params, sizes []int) (stats.Series, error) {
	rs, err := Run(ctx, Query{
		Kind:    KindPayloadSweep,
		Workers: p.Workers,
		Direct:  &query.Direct{Params: &p, Payloads: sizes},
	})
	if err != nil {
		return stats.Series{}, err
	}
	return rs.Results[0].Value().(stats.Series), nil
}

// OptimalPayload reports the energy-optimal payload size.
func OptimalPayload(p Params, step int) (int, float64, error) {
	return core.OptimalPayload(p, step)
}

// DefaultCaseStudy returns the paper's 1600-node scenario.
func DefaultCaseStudy() CaseStudyConfig { return core.DefaultCaseStudy() }

// RunCaseStudy integrates the model over the path-loss population (§5).
func RunCaseStudy(p Params, cfg CaseStudyConfig) (CaseStudyResult, error) {
	return RunCaseStudyCtx(context.Background(), p, cfg)
}

// RunCaseStudyCtx is RunCaseStudy with cancellation: a canceled ctx stops
// the population sweep promptly with ctx.Err(). It wraps Run with a
// casestudy Query.
func RunCaseStudyCtx(ctx context.Context, p Params, cfg CaseStudyConfig) (CaseStudyResult, error) {
	rs, err := Run(ctx, Query{
		Kind:    KindCaseStudy,
		Workers: p.Workers,
		Direct:  &query.Direct{Params: &p, CaseStudy: &cfg},
	})
	if err != nil {
		return CaseStudyResult{}, err
	}
	return rs.Results[0].Value().(CaseStudyResult), nil
}

// EvaluateImprovements runs the §5 radio-architecture ablations.
func EvaluateImprovements(p Params, cfg CaseStudyConfig) (ImprovementResult, error) {
	return core.EvaluateImprovements(p, cfg, core.DefaultImprovements())
}

// CC2420 returns the paper's measured radio characterization (Fig. 3).
func CC2420() *Radio { return radio.CC2420() }

// Eq1BER is the paper's measured bit-error regression (eq. 1).
var Eq1BER = phy.Eq1

// SimulateContention runs the Monte-Carlo slotted CSMA/CA characterization
// (the methodology behind Fig. 6).
func SimulateContention(cfg ContentionConfig) ContentionResult {
	return contention.Simulate(cfg)
}

// Simulate runs the cycle-accurate discrete-event network simulation. It
// wraps Run with a simulate Query.
func Simulate(cfg SimConfig) SimResult {
	rs, err := Run(context.Background(), Query{
		Kind:   KindSimulate,
		Direct: &query.Direct{Sim: &cfg},
	})
	if err != nil {
		// Unreachable with a background context (the simulator itself
		// cannot fail); keep the legacy direct path rather than panicking.
		return netsim.Run(cfg)
	}
	return rs.Results[0].Value().(SimResult)
}

// SimulateReplicas runs n independent replications of cfg concurrently on
// workers goroutines (0 ⇒ NumCPU) and merges them into across-replica mean
// and 95% confidence statistics. Replica 0 keeps cfg.Seed — a 1-replica
// run reproduces Simulate(cfg) — and the remaining seeds derive from it,
// so any replica count reuses the same random streams. A canceled ctx
// stops the batch promptly with ctx.Err(). It wraps Run with a replicas
// Query.
func SimulateReplicas(ctx context.Context, cfg SimConfig, n, workers int) (SimReplicaSet, error) {
	rs, err := Run(ctx, Query{
		Kind:     KindReplicas,
		Replicas: n,
		Workers:  workers,
		Direct:   &query.Direct{Sim: &cfg},
	})
	if err != nil {
		return SimReplicaSet{}, err
	}
	return rs.Value().(SimReplicaSet), nil
}

// Re-exported scenario-catalog types. A Scenario is a declarative
// operating point of the model/simulator space; ScenarioResult is the
// cross-model outcome the committed golden files pin byte for byte.
type (
	Scenario          = scenario.Scenario
	ScenarioResult    = scenario.Result
	ScenarioTolerance = scenario.Tolerance
	ScenarioDiff      = scenario.DiffReport
)

// Scenarios returns the committed cross-model scenario catalog: named
// operating points spanning sparse→dense networks, light→saturated traffic
// and short→long beacon intervals, each with declared analytic-vs-simulated
// agreement tolerances and a committed golden file.
func Scenarios() []Scenario { return scenario.Catalog() }

// ScenarioByName finds a catalog scenario.
func ScenarioByName(name string) (Scenario, bool) { return scenario.ByName(name) }

// RunScenario pushes one scenario through both the analytical model and
// the discrete-event simulator and scores their agreement. Results are
// bit-identical at any worker count (0 ⇒ NumCPU). It wraps Run with a
// scenario Query.
func RunScenario(ctx context.Context, sc Scenario, workers int) (*ScenarioResult, error) {
	rs, err := Run(ctx, Query{
		Kind:    KindScenario,
		Workers: workers,
		Direct:  &query.Direct{Scenario: &sc},
	})
	if err != nil {
		return nil, err
	}
	return rs.Results[0].Value().(*ScenarioResult), nil
}

// ScenarioGolden returns the committed golden-file bytes for a scenario.
func ScenarioGolden(name string) ([]byte, bool) { return scenario.Golden(name) }

// DiffScenario compares a fresh scenario result against its committed
// golden: byte-identical passes outright, otherwise per-metric drift is
// scored under the scenario's tolerances.
func DiffScenario(fresh *ScenarioResult) (ScenarioDiff, error) { return scenario.Diff(fresh) }

// Experiments lists the registered paper-artifact drivers.
func Experiments() []Experiment { return experiments.All() }

// RunExperiment executes one driver by name (e.g. "fig6", "casestudy").
// It wraps Run with an experiment Query.
func RunExperiment(name string, opt ExperimentOpts) ([]*Table, error) {
	if _, ok := experiments.ByName(name); !ok {
		return nil, errUnknownExperiment(name)
	}
	rs, err := Run(context.Background(), Query{
		Kind:       KindExperiment,
		Experiment: name,
		Workers:    opt.Workers,
		Direct:     &query.Direct{ExperimentOpts: &opt},
	})
	if err != nil {
		return nil, err
	}
	return rs.Results[0].Value().([]*Table), nil
}

// ServeConfig configures the HTTP batch-evaluation service front-end (see
// internal/service for the endpoint list and wire formats).
type ServeConfig = service.Config

// NewHTTPHandler builds the HTTP JSON API exposing the whole model surface
// — the unified /v2/query endpoints plus the frozen per-endpoint v1 routes
// — with a server-wide worker pool, per-request deadlines and a bounded
// contention cache. Mount it on any http.Server; cmd/wsn-serve is the
// reference deployment.
func NewHTTPHandler(cfg ServeConfig) http.Handler { return service.NewServer(cfg) }

type errUnknownExperiment string

func (e errUnknownExperiment) Error() string {
	return "dense802154: unknown experiment " + string(e)
}
